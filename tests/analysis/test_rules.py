"""Fixture-corpus tests: every rule flags its known-bad snippet and
passes the known-good twin.

The corpus under ``tests/analysis/fixtures/`` is the regression net
the ISSUE 6 tentpole demands: each ``*_bad.py`` is a minimized
reproduction of the historical bug its rule encodes (the PR 1
``simulate_word_batch`` aliasing bug, the PR 3 uint8 BFS overflow,
the PR 4-5 canonical-JSON lessons), and each ``*_good.py`` twin proves
the rule does not fire on the idiomatic fix.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import all_rules, lint_paths

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: fixture stem prefix -> rule id that must fire on the ``_bad`` file.
CORPUS = {
    "rng_discipline": "REPRO101",
    "rng_threading": "REPRO101",
    "dtype_overflow": "REPRO102",
    "view_aliasing": "REPRO103",
    "canonical_json": "REPRO104",
    "nondeterminism": "REPRO105",
    "shard_purity": "REPRO106",
}


def _lint(path: pathlib.Path):
    report, _ = lint_paths([path])
    return report


@pytest.mark.parametrize("stem,rule_id", sorted(CORPUS.items()))
def test_bad_fixture_is_flagged(stem: str, rule_id: str) -> None:
    report = _lint(FIXTURES / f"{stem}_bad.py")
    hits = [f for f in report.findings if f.rule_id == rule_id]
    assert hits, f"{stem}_bad.py produced no {rule_id} finding"


@pytest.mark.parametrize("stem", sorted(CORPUS))
def test_good_twin_is_clean(stem: str) -> None:
    report = _lint(FIXTURES / f"{stem}_good.py")
    assert report.findings == [], [f.render() for f in report.findings]


def test_every_rule_has_fixture_coverage() -> None:
    """No rule ships without a bad/good fixture pair."""
    covered = set(CORPUS.values())
    assert covered == set(all_rules()), (
        "rules without fixtures (add a *_bad.py/*_good.py pair and a "
        f"CORPUS entry): {sorted(set(all_rules()) - covered)}"
    )
    for stem in CORPUS:
        assert (FIXTURES / f"{stem}_bad.py").is_file()
        assert (FIXTURES / f"{stem}_good.py").is_file()


def test_corpus_gates_nonzero() -> None:
    """The acceptance-criteria gate: the corpus as a whole must fail."""
    report, _ = lint_paths([FIXTURES])
    assert report.exit_code == 1
    # Every rule contributes at least one finding to the corpus run.
    fired = {f.rule_id for f in report.findings}
    assert set(all_rules()) <= fired


def test_aliasing_regression_matches_pr1_shape() -> None:
    """The PR 1 fixture is flagged *on its return statement*."""
    report = _lint(FIXTURES / "view_aliasing_bad.py")
    (finding,) = [f for f in report.findings if f.rule_id == "REPRO103"]
    assert "simulate_word" in finding.message
    assert "_SCRATCH" in finding.message


def test_overflow_regression_matches_pr3_shape() -> None:
    """The PR 3 fixture is flagged on the uint8 matmul feedback."""
    report = _lint(FIXTURES / "dtype_overflow_bad.py")
    messages = [
        f.message for f in report.findings if f.rule_id == "REPRO102"
    ]
    assert any("matmul feedback" in m and "uint8" in m for m in messages)
