"""Engine mechanics: suppressions, baselines, parse errors, output."""

from __future__ import annotations

import json

import pytest

from repro.analysis.engine import (
    collect_files,
    lint_paths,
    load_baseline,
    write_baseline,
)

BAD_JSON_LINE = "json.dumps(payload)\n"


def _write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(body)
    return path


def test_suppression_with_reason_does_not_gate(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)"
        "  # repro-lint: disable=REPRO104 -- human-only debug dump\n",
    )
    report, _ = lint_paths([tmp_path])
    assert report.exit_code == 0
    assert [f.rule_id for f in report.suppressed] == ["REPRO104"]


def test_bare_suppression_is_itself_a_finding(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)  # repro-lint: disable=REPRO104\n",
    )
    report, _ = lint_paths([tmp_path])
    assert report.exit_code == 1
    assert [f.rule_id for f in report.findings] == ["REPRO100"]
    assert "missing a '-- reason'" in report.findings[0].message
    # The original finding is still recorded as suppressed, not lost.
    assert [f.rule_id for f in report.suppressed] == ["REPRO104"]


def test_unused_suppression_is_a_finding(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "X = 1  # repro-lint: disable=REPRO104 -- nothing to suppress here\n",
    )
    report, _ = lint_paths([tmp_path])
    assert [f.rule_id for f in report.findings] == ["REPRO100"]
    assert "matches no finding" in report.findings[0].message


def test_suppression_in_docstring_is_ignored(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        '"""Docs may quote the syntax:\n\n'
        "    x()  # repro-lint: disable=REPRO104 -- example\n"
        '"""\n',
    )
    report, _ = lint_paths([tmp_path])
    assert report.findings == []


def test_wrong_rule_suppression_does_not_apply(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)"
        "  # repro-lint: disable=REPRO105 -- wrong rule\n",
    )
    report, _ = lint_paths([tmp_path])
    rule_ids = sorted(f.rule_id for f in report.findings)
    # The REPRO104 finding still gates, and the suppression is unused.
    assert rule_ids == ["REPRO100", "REPRO104"]


def test_baseline_roundtrip(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)\n",
    )
    report, line_text = lint_paths([tmp_path])
    assert report.exit_code == 1
    baseline_file = tmp_path / "baseline.json"
    count = write_baseline(baseline_file, report, line_text)
    assert count == 1
    baseline = load_baseline(baseline_file)
    report2, _ = lint_paths([tmp_path], baseline=baseline)
    assert report2.exit_code == 0
    assert [f.rule_id for f in report2.baselined] == ["REPRO104"]
    # A *new* violation on another line still gates.
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)\n"
        "def g(payload):\n"
        "    return json.dumps(payload, indent=2)\n",
    )
    report3, _ = lint_paths([tmp_path], baseline=baseline)
    assert report3.exit_code == 1
    assert len(report3.findings) == 1 and report3.findings[0].line == 5


def test_baseline_rejects_foreign_files(tmp_path):
    path = _write(tmp_path, "baseline.json", json.dumps({"not": "a baseline"}))
    with pytest.raises(ValueError):
        load_baseline(path)


def test_parse_error_is_a_gating_finding(tmp_path):
    _write(tmp_path, "broken.py", "def f(:\n")
    report, _ = lint_paths([tmp_path])
    assert report.exit_code == 1
    assert [f.rule_id for f in report.findings] == ["REPRO000"]


def test_collect_files_rejects_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        collect_files([tmp_path / "no-such-dir"])


def test_collect_files_skips_hidden_and_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    _write(tmp_path / "__pycache__", "junk.py", "x = 1\n")
    (tmp_path / ".hidden").mkdir()
    _write(tmp_path / ".hidden", "junk.py", "x = 1\n")
    keep = _write(tmp_path, "keep.py", "x = 1\n")
    assert collect_files([tmp_path]) == [keep]


def test_select_and_ignore_filter_rules(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json, time\n"
        "def f(payload):\n"
        "    return json.dumps(payload), time.time()\n",
    )
    both, _ = lint_paths([tmp_path])
    assert sorted({f.rule_id for f in both.findings}) == ["REPRO104", "REPRO105"]
    only104, _ = lint_paths([tmp_path], select=["REPRO104"])
    assert {f.rule_id for f in only104.findings} == {"REPRO104"}
    no104, _ = lint_paths([tmp_path], ignore=["REPRO104"])
    assert {f.rule_id for f in no104.findings} == {"REPRO105"}
    with pytest.raises(KeyError):
        lint_paths([tmp_path], select=["NOPE999"])


def test_json_report_is_canonical(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)\n",
    )
    report, line_text = lint_paths([tmp_path])
    payload = report.to_json_dict(line_text=line_text)
    first = json.dumps(payload, sort_keys=True)
    second = json.dumps(report.to_json_dict(line_text=line_text), sort_keys=True)
    assert first == second
    decoded = json.loads(first)
    assert decoded["summary"]["findings"] == 1
    (row,) = decoded["findings"]
    assert row["rule"] == "REPRO104"
    assert len(row["fingerprint"]) == 16
