"""Property-based tests (hypothesis) on the core data structures and
invariants: graph axioms, view/symmetry coherence, Shrink bounds,
pairing bijectivity, schedule guarantees, encodings, and the
feasibility characterization exercised end-to-end on random instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    STIC,  # noqa: F401  (re-exported API sanity)
    apply_uxs,
    encode_graph_view,
    pair,
    schedule_word,
    triple,
    unpair,
    untriple,
    verify_schedule_pair,
)
from repro.core.explore import count_walks
from repro.graphs import random_connected_graph, random_tree
from repro.symmetry import (
    are_symmetric,
    classify_stic,
    shrink,
    shrink_witness,
    truncated_view,
    view_classes,
)
from repro.util import (
    bits_to_int,
    double_and_terminate,
    int_to_bits,
    undouble,
)

graph_strategy = st.builds(
    random_connected_graph,
    n=st.integers(min_value=2, max_value=9),
    extra_edges=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
)

tree_strategy = st.builds(
    random_tree,
    n=st.integers(min_value=2, max_value=9),
    seed=st.integers(min_value=0, max_value=10**6),
)


class TestGraphAxioms:
    @given(graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_port_involution(self, g):
        """succ(succ(v,p), entry_port(v,p)) == v for every port."""
        for v in range(g.n):
            for p in range(g.degree(v)):
                w = g.succ(v, p)
                q = g.entry_port(v, p)
                assert g.succ(w, q) == v
                assert g.entry_port(w, q) == p

    @given(graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.degrees.sum()) == 2 * len(g.edges)

    @given(graph_strategy, st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_reverse_path_returns_home(self, g, seed):
        from repro.util.lcg import SplitMix64

        rng = SplitMix64(seed)
        node = rng.randrange(g.n)
        alpha = []
        cursor = node
        for _ in range(rng.randrange(6) + 1):
            p = rng.randrange(g.degree(cursor))
            alpha.append(p)
            cursor = g.succ(cursor, p)
        back = g.reverse_ports(node, alpha)
        assert g.apply_port_sequence(cursor, back) == node


class TestSymmetryInvariants:
    @given(graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_view_classes_refine_degrees(self, g):
        colors = view_classes(g)
        for u in range(g.n):
            for v in range(g.n):
                if colors[u] == colors[v]:
                    assert g.degree(u) == g.degree(v)

    @given(graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_classes_match_truncated_views(self, g):
        colors = view_classes(g)
        depth = g.n - 1
        views = [truncated_view(g, v, min(depth, 4)) for v in range(g.n)]
        # equal colors => equal truncated views at any depth
        for u in range(g.n):
            for v in range(g.n):
                if colors[u] == colors[v]:
                    assert views[u] == views[v]

    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_shrink_bounds(self, g):
        """0 <= Shrink(u,v) <= dist(u,v); symmetric distinct pairs >= 1."""
        for u in range(g.n):
            for v in range(u + 1, g.n):
                s = shrink(g, u, v)
                assert 0 <= s <= g.distance(u, v)
                if are_symmetric(g, u, v):
                    assert s >= 1

    @given(graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_shrink_witness_consistent(self, g):
        for u in range(g.n):
            for v in range(u + 1, g.n):
                value, alpha, (x, y) = shrink_witness(g, u, v)
                assert g.apply_port_sequence(u, alpha) == x
                assert g.apply_port_sequence(v, alpha) == y
                assert g.distance(x, y) == value

    @given(graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_feasibility_trichotomy(self, g):
        for u in range(g.n):
            for v in range(u + 1, g.n):
                verdict0 = classify_stic(g, u, v, 0)
                if not verdict0.symmetric:
                    assert verdict0.feasible
                else:
                    s = verdict0.shrink
                    assert classify_stic(g, u, v, s).feasible
                    if s > 0:
                        assert not classify_stic(g, u, v, s - 1).feasible


class TestEncodings:
    @given(st.integers(min_value=0, max_value=2**48))
    def test_int_bits_roundtrip(self, x):
        assert bits_to_int(int_to_bits(x)) == x

    @given(st.lists(st.integers(0, 1), max_size=24))
    def test_doubling_roundtrip(self, bits):
        assert list(undouble(double_and_terminate(bits))) == bits

    @given(
        st.lists(st.integers(0, 1), max_size=12),
        st.lists(st.integers(0, 1), max_size=12),
    )
    def test_doubling_prefix_free(self, a, b):
        ca, cb = double_and_terminate(a), double_and_terminate(b)
        if tuple(a) != tuple(b):
            shorter, longer = sorted((ca, cb), key=len)
            assert longer[: len(shorter)] != shorter

    @given(tree_strategy, st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_view_encoding_separates_classes(self, g, depth_slack):
        depth = min(g.n - 1, 3 + depth_slack)
        colors = view_classes(g)
        encs = [encode_graph_view(g, v, g.n - 1) for v in range(g.n)]
        for u in range(g.n):
            for v in range(g.n):
                assert (encs[u] == encs[v]) == (colors[u] == colors[v])


class TestPairingProperties:
    @given(st.integers(1, 10**6))
    def test_unpair_inverts(self, p):
        x, y = unpair(p)
        assert pair(x, y) == p

    @given(st.integers(1, 10**4), st.integers(1, 10**4))
    def test_pair_injective_roundtrip(self, x, y):
        assert unpair(pair(x, y)) == (x, y)

    @given(st.integers(1, 500), st.integers(1, 500), st.integers(1, 500))
    def test_triple_roundtrip(self, x, y, z):
        assert untriple(triple(x, y, z)) == (x, y, z)


class TestScheduleProperty:
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=4),
        st.lists(st.integers(0, 1), min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_labels_always_verified(self, a, b):
        if a == b:
            return
        assert verify_schedule_pair(schedule_word(a), schedule_word(b))


class TestWalkInvariants:
    @given(graph_strategy, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_walk_count_bound(self, g, d):
        for v in range(g.n):
            assert count_walks(g, v, d) <= max(g.n - 1, 1) ** d

    @given(graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_uxs_application_stays_in_graph(self, g):
        from repro.core.profile import TUNED

        seq = TUNED.uxs(g.n)[: 8 * g.n]
        walk = apply_uxs(g, 0, seq)
        assert all(0 <= v < g.n for v in walk)
        assert len(walk) == len(seq) + 2
