"""The pluggable-backend seam: protocol conformance, the registry, and
a full engine run through a non-default backend.

``CountingBackend`` delegates every primitive to numpy but counts the
calls — structurally it satisfies :class:`ArrayBackend` without
inheriting anything, which is exactly the plug-in contract.  Running
the engines under it must (a) actually route the replay-stage array
work through the plugged backend and (b) leave every result
bit-identical to the default path.
"""

import numpy as np
import pytest

from harness import (
    event_budget,
    graph_pool,
    schedule_corpus,
    seeded_agent,
    stic_budget,
    stic_corpus,
    uxs_corpus,
)
from repro.exec.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from repro.exec.uxs import covered_counts
from repro.sim.batch import run_rendezvous_batch
from repro.sim.schedule_adversary import run_schedule_sweep


class CountingBackend:
    """Numpy semantics, but every primitive call is tallied."""

    def __init__(self, name: str = "counting"):
        self.name = name
        self.calls: dict[str, int] = {}
        self._inner = NumpyBackend()

    def __getattr__(self, attr):
        inner = getattr(self._inner, attr)

        def counted(*args, **kwargs):
            self.calls[attr] = self.calls.get(attr, 0) + 1
            return inner(*args, **kwargs)

        return counted


def test_protocol_conformance():
    """Both the default and a structural plug-in satisfy the protocol."""
    assert isinstance(NumpyBackend(), ArrayBackend)
    assert isinstance(CountingBackend(), ArrayBackend)
    assert default_backend().name == "numpy"


def test_registry_roundtrip():
    backend = CountingBackend(name="counting-test")
    register_backend(backend)
    try:
        assert get_backend("counting-test") is backend
        assert "counting-test" in available_backends()
        assert "numpy" in available_backends()
    finally:
        # Keep the process-wide registry clean for other tests.
        from repro.exec import backend as backend_module

        backend_module._BACKENDS.pop("counting-test", None)
    assert "counting-test" not in available_backends()


def test_get_backend_unknown_name():
    with pytest.raises(KeyError, match="unknown array backend"):
        get_backend("no-such-backend")


def test_register_backend_requires_name():
    anonymous = CountingBackend(name="")
    with pytest.raises(ValueError, match="non-empty name"):
        register_backend(anonymous)


def test_sync_sweep_routes_through_plugged_backend():
    graph, stics = stic_corpus(2, 11)
    backend = CountingBackend()
    plugged = run_rendezvous_batch(
        graph, stics, seeded_agent(11), max_rounds=stic_budget, backend=backend
    )
    default = run_rendezvous_batch(
        graph, stics, seeded_agent(11), max_rounds=stic_budget
    )
    assert plugged == default
    assert backend.calls.get("asarray", 0) > 0  # trace finalization
    assert backend.calls.get("sort", 0) > 0  # breakpoint merges
    assert backend.calls.get("searchsorted", 0) > 0  # step-function lookups


def test_async_sweep_routes_through_plugged_backend():
    graph, cells = schedule_corpus(3, 23)
    backend = CountingBackend()
    plugged = run_schedule_sweep(
        graph,
        cells,
        seeded_agent(23),
        max_events=event_budget,
        backend=backend,
    )
    default = run_schedule_sweep(
        graph, cells, seeded_agent(23), max_events=event_budget
    )
    assert plugged == default
    assert backend.calls.get("take", 0) > 0


def test_uxs_kernel_routes_through_plugged_backend():
    graph, stream = uxs_corpus(7)
    backend = CountingBackend()
    plugged = covered_counts(graph, stream, backend=backend)
    default = covered_counts(graph, stream)
    assert np.array_equal(np.asarray(plugged), np.asarray(default))
    assert backend.calls.get("take", 0) > 0


def test_backend_results_bit_identical_across_graph_pool():
    """Spot-sweep the whole graph pool under the plugged backend."""
    for graph_idx in range(len(graph_pool())):
        graph, stics = stic_corpus(graph_idx, 47, count=6)
        backend = CountingBackend()
        assert run_rendezvous_batch(
            graph,
            stics,
            seeded_agent(47),
            max_rounds=stic_budget,
            backend=backend,
        ) == run_rendezvous_batch(
            graph, stics, seeded_agent(47), max_rounds=stic_budget
        )
