"""Differential fuzz: the unified synchronous STIC sweep against the
frozen pre-refactor engine (and the retained scalar scheduler).

Every ``(graph, agent, STIC)`` instance must produce a bit-identical
:class:`~repro.sim.scheduler.RendezvousResult` — full dataclass
equality, every field — between :func:`repro.sim.batch.
run_rendezvous_batch` (now a frontend over ``repro.exec``) and the
pre-refactor loop preserved in ``benchmarks/_legacy_engines.py``.
Error binding (which STIC an agent exception is raised for, and with
what message) is part of the contract and fuzzed separately.
"""

import pytest

from harness import (
    assert_engines_identical,
    graph_pool,
    load_legacy,
    seeded_agent,
    stic_budget,
    stic_corpus,
    terminating_agent,
)
from repro.sim import Move
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import run_rendezvous

AGENT_SEEDS = (11, 23, 47)
CASES = [
    (graph_idx, agent_seed)
    for graph_idx in range(len(graph_pool()))
    for agent_seed in AGENT_SEEDS
]


def stic_case(graph_idx: int, agent_seed: int) -> str | None:
    """One corpus cell: batch-vs-legacy on 12 STICs, full equality."""
    graph, stics = stic_corpus(graph_idx, agent_seed)
    new = run_rendezvous_batch(
        graph, stics, seeded_agent(agent_seed), max_rounds=stic_budget
    )
    old = load_legacy().legacy_run_rendezvous_batch(
        graph, stics, seeded_agent(agent_seed), max_rounds=stic_budget
    )
    for stic, a, b in zip(stics, new, old):
        if a != b:
            return f"stic {stic}: new={a} old={b}"
    # Spot-check the retained scalar reference on the first few STICs.
    for u, v, delta in stics[:4]:
        ref = run_rendezvous(
            graph,
            u,
            v,
            delta,
            seeded_agent(agent_seed),
            max_rounds=stic_budget(u, v, delta),
        )
        got = new[stics.index((u, v, delta))]
        fields = (
            "met",
            "meeting_node",
            "meeting_time",
            "time_from_later",
            "rounds_executed",
        )
        for f in fields:
            if getattr(got, f) != getattr(ref, f):
                return f"stic {(u, v, delta)} scalar {f}: {got} vs {ref}"
    return None


def test_corpus_size():
    """The acceptance bar: at least 200 fuzzed instances."""
    total = sum(len(stic_corpus(g, s)[1]) for g, s in CASES)
    assert total >= 200, total


def test_batch_matches_legacy_and_scalar():
    assert_engines_identical(stic_case, CASES, min_cases=len(CASES))


def terminating_case(graph_idx: int, lifetime: int) -> str | None:
    """Scripts that end mid-run exercise the complete-trace clamp."""
    graph, stics = stic_corpus(graph_idx, 100 + lifetime)
    algo = terminating_agent(3, lifetime)
    new = run_rendezvous_batch(graph, stics, algo, max_rounds=stic_budget)
    old = load_legacy().legacy_run_rendezvous_batch(
        graph, stics, algo, max_rounds=stic_budget
    )
    for stic, a, b in zip(stics, new, old):
        if a != b:
            return f"stic {stic}: new={a} old={b}"
    return None


def test_terminating_agents_match():
    cases = [(g, life) for g in (1, 3, 5) for life in (0, 1, 5, 17)]
    assert_engines_identical(terminating_case, cases)


@pytest.mark.parametrize("delta", [0, 3, 40])
def test_error_binding_parity(delta):
    """Agent errors bind to the same STIC with the same message."""

    def explodes(percept):
        for _ in range(6):
            percept = yield Move(percept.clock % percept.degree)
        raise RuntimeError("boom")

    graph = graph_pool()[2]
    stics = [(0, 3, delta)]
    legacy = load_legacy()
    new_exc = old_exc = None
    try:
        run_rendezvous_batch(graph, stics, explodes, max_rounds=50)
    except Exception as exc:  # noqa: BLE001 - parity check
        new_exc = (type(exc).__name__, str(exc))
    try:
        legacy.legacy_run_rendezvous_batch(graph, stics, explodes, max_rounds=50)
    except Exception as exc:  # noqa: BLE001 - parity check
        old_exc = (type(exc).__name__, str(exc))
    assert new_exc == old_exc
    assert new_exc is not None  # budget 50 reaches the failing round


def test_bad_port_message_parity():
    """Engine-detected invalid moves quote the scalar's global round."""

    def bad(percept):
        yield Move(0)
        while True:
            percept = yield Move(7)

    graph = graph_pool()[1]
    with pytest.raises(ValueError) as new_exc:
        run_rendezvous_batch(graph, [(0, 2, 5)], bad, max_rounds=60)
    with pytest.raises(ValueError) as old_exc:
        load_legacy().legacy_run_rendezvous_batch(
            graph, [(0, 2, 5)], bad, max_rounds=60
        )
    assert str(new_exc.value) == str(old_exc.value)


def test_oracle_mode_matches_legacy():
    """Per-start oracle tries survive the rewiring."""

    def algorithm(percept, oracle):
        while True:
            percept = yield Move((percept.clock + oracle) % percept.degree)

    graph = graph_pool()[3]
    _, stics = stic_corpus(3, 7)
    new = run_rendezvous_batch(
        graph,
        stics,
        algorithm,
        max_rounds=stic_budget,
        oracle_factory=lambda start: start % 3,
    )
    old = load_legacy().legacy_run_rendezvous_batch(
        graph,
        stics,
        algorithm,
        max_rounds=stic_budget,
        oracle_factory=lambda start: start % 3,
    )
    assert new == old
