"""Property tests for the trace IR itself (satellite: fuel accounting
monotonicity, trace-deepening idempotence, meeting-detection symmetry).

These are randomized invariants of :mod:`repro.exec` — not
differential comparisons against another engine, but laws the IR must
satisfy on every seeded instance Hypothesis generates:

* **prefix/monotonicity**: deepening a compile extends the step
  function without rewriting history — ``times``/``nodes`` of the
  shallow trace are a prefix of the deep one's, ``moves`` and
  ``valid_through`` never decrease, and the ``tail_waits`` fuel gauge
  is exactly the wait-run length at the compiled frontier;
* **idempotence**: compile-then-deepen lands on the bit-identical
  arrays a fresh compile straight to the deep horizon produces;
* **symmetry**: with no start delay the meeting relation is symmetric
  — swapping the agents changes neither the meeting time nor the node
  (and the asynchronous resolver is likewise swap-invariant under a
  symmetric schedule).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import graph_pool, seeded_agent
from repro.exec.meeting import solve_sync_meeting
from repro.exec.trace import TraceCompiler

GRAPHS = graph_pool()

graph_indices = st.integers(min_value=0, max_value=len(GRAPHS) - 1)
agent_seeds = st.integers(min_value=0, max_value=10**6)


@settings(max_examples=60, deadline=None)
@given(
    graph_idx=graph_indices,
    agent_seed=agent_seeds,
    start=st.integers(min_value=0, max_value=3),
    shallow=st.integers(min_value=0, max_value=64),
    extra=st.integers(min_value=1, max_value=192),
)
def test_deepening_is_a_prefix_extension(
    graph_idx, agent_seed, start, shallow, extra
):
    graph = GRAPHS[graph_idx]
    start %= graph.n
    compiler = TraceCompiler(graph, seeded_agent(agent_seed))
    t1 = compiler.trace(start, shallow)
    t2 = compiler.trace(start, shallow + extra)
    # Fuel/progress accounting is monotone in the horizon.
    assert t2.moves >= t1.moves
    assert t2.valid_through >= t1.valid_through
    # The shallow step function is a prefix of the deep one.
    k = len(t1.times)
    assert np.array_equal(t2.times[:k], t1.times)
    assert np.array_equal(t2.nodes[:k], t1.nodes)
    # If no move happened in the extension, the wait run only grew.
    if t2.moves == t1.moves and not t1.complete:
        assert t2.tail_waits >= t1.tail_waits


@settings(max_examples=60, deadline=None)
@given(
    graph_idx=graph_indices,
    agent_seed=agent_seeds,
    start=st.integers(min_value=0, max_value=3),
    shallow=st.integers(min_value=0, max_value=64),
    deep=st.integers(min_value=65, max_value=256),
)
def test_deepening_is_idempotent(graph_idx, agent_seed, start, shallow, deep):
    """compile(h) then compile(H) defines the same step function over
    ``[0, H]`` as a fresh compile straight to ``H``.

    Bit-identity of the raw arrays is deliberately *not* asserted: a
    ``WaitBlock`` may overshoot a horizon, letting a cached shallow
    trace satisfy the deeper request without recompiling — its
    ``valid_through``/``tail_waits`` frontier bookkeeping then lags a
    fresh compile's, but every position the IR contract defines must
    agree.
    """
    graph = GRAPHS[graph_idx]
    start %= graph.n
    stepped = TraceCompiler(graph, seeded_agent(agent_seed))
    stepped.trace(start, shallow)
    via_deepen = stepped.trace(start, deep)
    direct = TraceCompiler(graph, seeded_agent(agent_seed)).trace(start, deep)
    # Both traces cover the requested range unless the agent errored.
    if via_deepen.error is None and direct.error is None:
        assert via_deepen.limit >= deep
        assert direct.limit >= deep
    if via_deepen.error is not None and direct.error is not None:
        assert str(via_deepen.error) == str(direct.error)
        assert via_deepen.valid_through == direct.valid_through
    horizon = int(min(deep, via_deepen.limit, direct.limit))
    clocks = np.arange(horizon + 1)
    pos_a = via_deepen.nodes[
        np.searchsorted(via_deepen.times, clocks, side="right") - 1
    ]
    pos_b = direct.nodes[
        np.searchsorted(direct.times, clocks, side="right") - 1
    ]
    assert np.array_equal(pos_a, pos_b)


@settings(max_examples=60, deadline=None)
@given(
    graph_idx=graph_indices,
    agent_seed=agent_seeds,
    u=st.integers(min_value=0, max_value=8),
    v=st.integers(min_value=0, max_value=8),
    limit=st.integers(min_value=0, max_value=400),
)
def test_sync_meeting_is_symmetric_at_zero_delay(
    graph_idx, agent_seed, u, v, limit
):
    graph = GRAPHS[graph_idx]
    u %= graph.n
    v %= graph.n
    compiler = TraceCompiler(graph, seeded_agent(agent_seed))
    traces = compiler.traces({u: limit, v: limit})
    hit_uv = solve_sync_meeting(traces[u], traces[v], 0, limit)
    hit_vu = solve_sync_meeting(traces[v], traces[u], 0, limit)
    assert hit_uv == hit_vu


@settings(max_examples=40, deadline=None)
@given(
    graph_idx=graph_indices,
    agent_seed=agent_seeds,
    u=st.integers(min_value=0, max_value=8),
    v=st.integers(min_value=0, max_value=8),
    budget=st.integers(min_value=0, max_value=200),
)
def test_async_resolution_is_symmetric_under_mirror(
    graph_idx, agent_seed, u, v, budget
):
    """Under the symmetric lockstep adversary, swapping the agents
    cannot change the outcome of a cell."""
    from repro.sim.schedule_adversary import MirrorSchedule, run_schedule_sweep

    graph = GRAPHS[graph_idx]
    u %= graph.n
    v %= graph.n
    algo = seeded_agent(agent_seed)
    sched = MirrorSchedule()
    fwd, rev = run_schedule_sweep(
        graph, [(u, v, sched), (v, u, sched)], algo, max_events=budget
    )
    assert (fwd.met, fwd.meeting_node, fwd.events, fwd.edge_meetings) == (
        rev.met,
        rev.meeting_node,
        rev.events,
        rev.edge_meetings,
    )
