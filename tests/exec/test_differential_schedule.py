"""Differential fuzz: the unified asynchronous schedule sweep against
the frozen pre-refactor engine (and the retained scalar adversary).

Every ``(graph, agent, pair, schedule)`` cell must produce a
bit-identical :class:`~repro.sim.schedule_adversary.AsyncOutcome` —
``met`` / ``meeting_node`` / ``events`` / ``edge_meetings`` — between
:func:`repro.sim.schedule_adversary.run_schedule_sweep` (now a
frontend over ``repro.exec``) and the pre-refactor loop preserved in
``benchmarks/_legacy_engines.py``.
"""

import pytest

from harness import (
    assert_engines_identical,
    graph_pool,
    load_legacy,
    schedule_corpus,
    seeded_agent,
    terminating_agent,
    event_budget,
)
from repro.sim import Move, Wait
from repro.sim.schedule_adversary import (
    MirrorSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)

AGENT_SEEDS = (11, 23, 47)
CASES = [
    (graph_idx, agent_seed)
    for graph_idx in range(len(graph_pool()))
    for agent_seed in AGENT_SEEDS
]


def schedule_case(graph_idx: int, agent_seed: int) -> str | None:
    """One corpus cell: sweep-vs-legacy on 12 cells, full equality."""
    graph, cells = schedule_corpus(graph_idx, agent_seed)
    new = run_schedule_sweep(
        graph, cells, seeded_agent(agent_seed), max_events=event_budget
    )
    old = load_legacy().legacy_run_schedule_sweep(
        graph, cells, seeded_agent(agent_seed), max_events=event_budget
    )
    for (u, v, schedule), a, b in zip(cells, new, old):
        if a != b:
            return f"cell {(u, v, schedule.name)}: new={a} old={b}"
    # Spot-check the retained scalar reference on the first few cells.
    for u, v, schedule in cells[:4]:
        ref = run_schedule_adversary(
            graph,
            u,
            v,
            seeded_agent(agent_seed),
            schedule,
            max_events=event_budget(u, v, schedule),
        )
        got = new[cells.index((u, v, schedule))]
        if (got.met, got.meeting_node, got.events, got.edge_meetings) != (
            ref.met,
            ref.meeting_node,
            ref.events,
            ref.edge_meetings,
        ):
            return f"cell {(u, v, schedule.name)} scalar: {got} vs {ref}"
    return None


def test_corpus_size():
    """The acceptance bar: at least 200 fuzzed instances."""
    total = sum(len(schedule_corpus(g, s)[1]) for g, s in CASES)
    assert total >= 200, total


def test_sweep_matches_legacy_and_scalar():
    assert_engines_identical(schedule_case, CASES, min_cases=len(CASES))


def terminating_case(graph_idx: int, lifetime: int) -> str | None:
    graph, cells = schedule_corpus(graph_idx, 100 + lifetime)
    algo = terminating_agent(3, lifetime)
    new = run_schedule_sweep(graph, cells, algo, max_events=120)
    old = load_legacy().legacy_run_schedule_sweep(
        graph, cells, algo, max_events=120
    )
    for (u, v, schedule), a, b in zip(cells, new, old):
        if a != b:
            return f"cell {(u, v, schedule.name)}: new={a} old={b}"
    return None


def test_terminating_agents_match():
    cases = [(g, life) for g in (1, 3, 5) for life in (0, 1, 5, 17)]
    assert_engines_identical(terminating_case, cases)


def test_error_parity():
    """Pull-time script errors and apply-time port errors both match."""

    def explodes(percept):
        percept = yield Move(0)
        raise RuntimeError("boom")

    def bad(percept):
        yield Move(0)
        while True:
            percept = yield Move(7)

    graph = graph_pool()[2]
    legacy = load_legacy()
    for algo, exc_type in ((explodes, RuntimeError), (bad, ValueError)):
        with pytest.raises(exc_type) as new_exc:
            run_schedule_sweep(
                graph, [(0, 3, MirrorSchedule())], algo, max_events=50
            )
        with pytest.raises(exc_type) as old_exc:
            legacy.legacy_run_schedule_sweep(
                graph, [(0, 3, MirrorSchedule())], algo, max_events=50
            )
        assert str(new_exc.value) == str(old_exc.value)


def test_fuel_limit_parity():
    """Wait-forever starvation raises identically in both engines."""

    def waiter(percept):
        while True:
            percept = yield Wait()

    graph = graph_pool()[1]
    with pytest.raises(RuntimeError, match="fuel") as new_exc:
        run_schedule_sweep(
            graph, [(0, 2, MirrorSchedule())], waiter, max_events=10, fuel=64
        )
    with pytest.raises(RuntimeError, match="fuel") as old_exc:
        load_legacy().legacy_run_schedule_sweep(
            graph, [(0, 2, MirrorSchedule())], waiter, max_events=10, fuel=64
        )
    assert str(new_exc.value) == str(old_exc.value)
