"""Golden fast-tier fixtures stay byte-for-byte identical across the
execution-core refactor.

The orchestrator suite already checks record *dict* equality for every
scenario; this suite pins the stronger acceptance bar for the three
experiments whose engines were rewired over :mod:`repro.exec` — the
synchronous batch sweep (EXP-L32), the baseline family incl. leader
election (EXP-BASE/LE), and the asynchronous adversary sweep
(EXP-ASYNC/RAND).  For each, the canonical-JSON serialization of a
fresh fast-tier run must equal the canonical-JSON serialization of the
pre-refactor golden fixture **as bytes**, so even ordering or float
formatting drift would fail.
"""

import json
import pathlib

import pytest

from repro.experiments.orchestrator import run_experiment
from repro.experiments.store import canonical_json

GOLDEN_DIR = pathlib.Path(__file__).parents[1] / "experiments" / "golden"

#: The engines this PR rewired, with the experiment that exercises each.
REWIRED = {
    "EXP-L32": "sync batch sweep (repro.sim.batch)",
    "EXP-BASE/LE": "baselines + leader election (repro.hardness)",
    "EXP-ASYNC/RAND": "async adversary sweep (repro.sim.schedule_adversary)",
}


def _slug(exp_id: str) -> str:
    return exp_id.lower().replace("/", "_").replace("-", "_")


@pytest.mark.parametrize("exp_id", sorted(REWIRED))
def test_fast_tier_bytes_match_golden(exp_id):
    golden_path = GOLDEN_DIR / f"{_slug(exp_id)}.fast.json"
    golden_bytes = canonical_json(json.loads(golden_path.read_text())).encode()
    run = run_experiment(exp_id, tier="fast")
    fresh_bytes = canonical_json(run.record.to_json_dict()).encode()
    assert fresh_bytes == golden_bytes, (
        f"{exp_id} ({REWIRED[exp_id]}): fast-tier record bytes changed"
    )
