"""Differential fuzz: the unified UXS coverage kernel against the
frozen pre-refactor engine (and the retained scalar walk).

Every seeded (graph, offset stream) instance must produce bit-identical
arrays — the all-starts walk matrix, the per-start coverage counts,
and the certification verdict — between :mod:`repro.exec.uxs` (the
engine behind ``repro.core.uxs_engine``) and the pre-refactor kernels
preserved in ``benchmarks/_legacy_engines.py``, as well as the scalar
:func:`repro.core.uxs.apply_uxs` walk.
"""

import numpy as np

from harness import assert_engines_identical, load_legacy, uxs_corpus
from repro.core.uxs import apply_uxs
from repro.exec.uxs import (
    apply_uxs_all,
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
    splitmix64_block,
)
from repro.util.lcg import SplitMix64

CASE_SEEDS = list(range(200))


def uxs_case(case_seed: int) -> str | None:
    """One instance: all-starts walk + coverage, new vs legacy vs scalar."""
    graph, stream = uxs_corpus(case_seed)
    legacy = load_legacy()
    new_walk = apply_uxs_all(graph, stream)
    old_walk = legacy.legacy_apply_uxs_all(graph, stream)
    if not np.array_equal(new_walk, old_walk):
        return "apply_uxs_all diverged from legacy"
    new_counts = covered_counts(graph, stream)
    old_counts = legacy.legacy_covered_counts(graph, stream)
    if not np.array_equal(new_counts, old_counts):
        return f"covered_counts diverged: {new_counts} vs {old_counts}"
    # Scalar cross-check on a couple of start nodes.
    for u in (0, graph.n - 1):
        if list(new_walk[u]) != list(apply_uxs(graph, u, stream)):
            return f"walk from {u} diverged from scalar apply_uxs"
    return None


def test_corpus_size():
    """The acceptance bar: at least 200 fuzzed instances."""
    assert len(CASE_SEEDS) >= 200


def test_coverage_matches_legacy_and_scalar():
    assert_engines_identical(
        uxs_case, [(s,) for s in CASE_SEEDS], min_cases=200
    )


def test_certification_verdict_matches_legacy():
    """The boolean verdict agrees on covering and non-covering streams."""
    legacy = load_legacy()
    for case_seed in range(0, 40):
        graph, stream = uxs_corpus(case_seed)
        for prefix in (0, len(stream) // 4, len(stream)):
            new = is_uxs_for_graph_vectorized(graph, stream[:prefix])
            old = bool(
                (
                    legacy.legacy_covered_counts(graph, stream[:prefix])
                    == graph.n
                ).all()
            )
            assert new == old, (case_seed, prefix)


def test_stream_generation_is_scalar_exact():
    """Vectorized SplitMix64 streams equal the scalar generator draw
    for draw, including rejection sampling."""
    for seed, bound, length in ((1, 7, 257), (99, 12, 64), (5, 1, 16)):
        vec = generate_offset_stream(seed, bound, length)
        rng = SplitMix64(seed)
        ref = [rng.randrange(bound) for _ in range(length)]
        assert list(vec) == ref, (seed, bound)


def test_splitmix_block_windows_agree():
    """Block evaluation is position-exact across window boundaries."""
    whole = splitmix64_block(123, 0, 300)
    parts = np.concatenate(
        [splitmix64_block(123, s, 60) for s in range(0, 300, 60)]
    )
    assert np.array_equal(whole, parts)
