"""Engine-equivalence fixture library for the execution-core refactor.

The old-vs-new contract: every engine rewired over :mod:`repro.exec`
must be bit-identical to the code it replaced.  This module supplies
the three ingredients the differential suites share:

* **frozen legacy engines** — :func:`load_legacy` imports
  ``benchmarks/_legacy_engines.py``, the pre-refactor solver/sweep
  layers preserved verbatim (the same copy the throughput benchmark
  times);
* **a deterministic fuzz corpus** — seeded graph, agent, STIC,
  schedule, and UXS-stream generators (pure functions of their seeds,
  so every run and every worker sees the same instances);
* **the comparison driver** — :func:`assert_engines_identical` runs a
  corpus of cases through a module-level case function and asserts
  every one reports identity.  Cases are independent, so with
  ``REPRO_TEST_JOBS > 1`` (the CI setting) they fan out over a
  process pool; the default runs them inline.

Case functions return ``None`` on success or a short failure detail
string; they must be module-level (picklable) and take only picklable
arguments.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.graphs import oriented_ring, oriented_torus, path_graph, star_graph
from repro.graphs.random_graphs import random_connected_graph
from repro.sim import Move, Wait, WaitBlock
from repro.util.lcg import SplitMix64, derive_seed

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_LEGACY = None


def load_legacy():
    """The frozen pre-refactor engines (``benchmarks/_legacy_engines.py``)."""
    global _LEGACY
    if _LEGACY is None:
        path = REPO_ROOT / "benchmarks" / "_legacy_engines.py"
        spec = importlib.util.spec_from_file_location("_legacy_engines", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("_legacy_engines", module)
        spec.loader.exec_module(module)
        _LEGACY = module
    return _LEGACY


# ---------------------------------------------------------------------------
# Deterministic fuzz corpus
# ---------------------------------------------------------------------------


def graph_pool():
    """The differential suites' graph families (mirrors tests/sim)."""
    return [
        path_graph(4),
        oriented_ring(5),
        oriented_ring(6),
        oriented_torus(3, 3),
        star_graph(4),
        random_connected_graph(6, 3, seed=4),
        random_connected_graph(7, 3, seed=9),
    ]


def seeded_agent(seed: int):
    """A pseudo-random deterministic agent program (moves, waits, and
    wait blocks, including clock-dependent port choices)."""

    def algorithm(percept):
        rng = SplitMix64(seed)
        while True:
            roll = rng.randrange(10)
            if roll < 5:
                percept = yield Move(rng.randrange(percept.degree))
            elif roll < 7:
                percept = yield Wait()
            elif roll < 9:
                percept = yield WaitBlock(rng.randrange(7) + 1)
            else:
                percept = yield Move(percept.clock % percept.degree)

    return algorithm


def terminating_agent(seed: int, lifetime: int):
    """An agent whose script ends after ``lifetime`` actions."""

    def algorithm(percept):
        rng = SplitMix64(seed)
        for _ in range(lifetime):
            if rng.randrange(4):
                percept = yield Move(rng.randrange(percept.degree))
            else:
                percept = yield Wait()

    return algorithm


def stic_corpus(graph_idx: int, agent_seed: int, count: int = 12):
    """Seeded ``(u, v, delta)`` STICs with per-STIC budgets for one
    (graph, agent) cell of the corpus."""
    graph = graph_pool()[graph_idx]
    rng = SplitMix64(derive_seed("exec-diff-stic", graph_idx, agent_seed))
    stics = []
    for _ in range(count):
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)  # u == v allowed: round-delta meeting
        delta = rng.randrange(12)
        stics.append((u, v, delta))
    return graph, stics


def stic_budget(u: int, v: int, delta: int) -> int:
    """Per-STIC round budget, a pure function of the STIC."""
    return derive_seed("exec-diff-budget", u, v, delta) % 801


def schedule_corpus(graph_idx: int, agent_seed: int, count: int = 12):
    """Seeded (pair, schedule) cells for one corpus cell."""
    from repro.sim.schedule_adversary import (
        EagerSchedule,
        FixedDelaySchedule,
        MirrorSchedule,
        RandomSchedule,
        RateSkewSchedule,
        WordSchedule,
    )

    graph = graph_pool()[graph_idx]
    rng = SplitMix64(derive_seed("exec-diff-sched", graph_idx, agent_seed))
    pool = [
        MirrorSchedule(),
        EagerSchedule(),
        EagerSchedule(1),
        FixedDelaySchedule(rng.randrange(9)),
        RateSkewSchedule(1 + rng.randrange(3), 1 + rng.randrange(4)),
        WordSchedule(
            tuple(
                ("a", "b", "ab", "-")[rng.randrange(4)]
                for _ in range(1 + rng.randrange(5))
            )
        ),
        RandomSchedule(rng.randrange(10**6)),
        RandomSchedule(rng.randrange(10**6), weights=(2, 1, 1)),
    ]
    cells = []
    for _ in range(count):
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)
        cells.append((u, v, pool[rng.randrange(len(pool))]))
    return graph, cells


def event_budget(u: int, v: int, schedule) -> int:
    """Per-cell event budget, a pure function of the cell."""
    return derive_seed("exec-diff-events", u, v, schedule.name) % 501


def uxs_corpus(case_seed: int):
    """One seeded UXS instance: (graph, offset stream as a list)."""
    from repro.exec.uxs import generate_offset_stream

    rng = SplitMix64(derive_seed("exec-diff-uxs", case_seed))
    n = 3 + rng.randrange(6)
    graph = random_connected_graph(n, 2 + rng.randrange(3), seed=rng.randrange(10**6))
    length = 50 + rng.randrange(400)
    stream = generate_offset_stream(rng.randrange(10**6), max(2 * n, 2), length)
    return graph, [int(x) for x in stream]


# ---------------------------------------------------------------------------
# Comparison driver
# ---------------------------------------------------------------------------


def jobs_from_env() -> int:
    """Worker count for the differential suites (``REPRO_TEST_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_TEST_JOBS", "1")))
    except ValueError:
        return 1


def assert_engines_identical(
    case_fn: Callable[..., str | None],
    cases: Sequence[tuple],
    *,
    jobs: int | None = None,
    min_cases: int | None = None,
) -> None:
    """Run every case through ``case_fn`` and fail on any mismatch.

    ``case_fn(*case)`` returns ``None`` when old and new engines agree
    bit-for-bit on that case, or a short detail string describing the
    first divergence.  With ``jobs > 1`` cases run in a process pool
    (``case_fn`` and the case tuples must be picklable); the corpus is
    deterministic either way, so failures reproduce inline.
    """
    if min_cases is not None:
        assert len(cases) >= min_cases, (
            f"fuzz corpus too small: {len(cases)} < {min_cases}"
        )
    jobs = jobs_from_env() if jobs is None else jobs
    if jobs > 1 and len(cases) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            details = list(pool.map(_star_apply, [(case_fn, c) for c in cases]))
    else:
        details = [case_fn(*case) for case in cases]
    failures = [
        f"case {case!r}: {detail}"
        for case, detail in zip(cases, details)
        if detail is not None
    ]
    assert not failures, (
        f"{len(failures)}/{len(cases)} cases diverged:\n" + "\n".join(failures[:10])
    )


def _star_apply(packed):
    case_fn, case = packed
    return case_fn(*case)
