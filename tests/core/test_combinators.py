"""Tests for bounded_run / backtrack / run_segment."""

import pytest

from repro.core import backtrack, bounded_run, run_segment
from repro.graphs import oriented_ring, path_graph
from repro.sim import Move, WaitBlock, run_single_agent, wait_rounds


def drive(graph, start, algorithm, max_rounds=10**6):
    return run_single_agent(graph, start, algorithm, max_rounds=max_rounds)


def walker(ports):
    """Inner script: walk the ports then finish."""

    def script(percept):
        for p in ports:
            percept = yield Move(p)
        return percept

    return script


class TestBoundedRun:
    def test_truncates_at_budget(self):
        g = oriented_ring(6)

        def algorithm(percept):
            def inner(p):
                while True:
                    p = yield Move(0)

            percept, trail = yield from bounded_run(percept, inner(percept), 4)
            assert len(trail) == 4
            return percept

        visited, final = drive(g, 0, algorithm)
        assert visited == [0, 1, 2, 3, 4]
        assert final == 4

    def test_early_finish_pads_with_waiting(self):
        g = oriented_ring(6)

        def algorithm(percept):
            percept, trail = yield from bounded_run(
                percept, walker([0, 0])(percept), 10
            )
            assert trail == [1, 1]
            return percept

        visited, final = drive(g, 0, algorithm)
        assert len(visited) - 1 == 10  # exactly the budget
        assert final == 2

    def test_zero_budget(self):
        g = oriented_ring(6)

        def algorithm(percept):
            percept, trail = yield from bounded_run(
                percept, walker([0])(percept), 0
            )
            assert trail == []
            return percept

        visited, final = drive(g, 0, algorithm)
        assert visited == [0] and final == 0

    def test_waitblock_split_at_budget(self):
        g = oriented_ring(6)

        def algorithm(percept):
            def inner(p):
                p = yield WaitBlock(100)
                p = yield Move(0)  # must never run
                return p

            percept, trail = yield from bounded_run(percept, inner(percept), 7)
            assert trail == []
            return percept

        visited, final = drive(g, 0, algorithm)
        assert len(visited) - 1 == 7 and final == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            list(bounded_run(None, iter(()), -1))


class TestBacktrack:
    def test_undoes_walk(self):
        g = path_graph(5)

        def algorithm(percept):
            percept, trail = yield from bounded_run(
                percept, walker([0, 1, 1])(percept), 3
            )
            percept = yield from backtrack(percept, trail)
            return percept

        _, final = drive(g, 0, algorithm)
        assert final == 0


class TestRunSegment:
    def test_exact_double_budget_and_home(self):
        g = oriented_ring(8)
        budget = 5

        def algorithm(percept):
            def inner(p):
                while True:
                    p = yield Move(0)

            percept = yield from run_segment(percept, inner(percept), budget)
            return percept

        visited, final = drive(g, 3, algorithm)
        assert final == 3
        assert len(visited) - 1 == 2 * budget

    def test_segment_with_waiting_inner(self):
        g = oriented_ring(8)
        budget = 6

        def algorithm(percept):
            def inner(p):
                p = yield Move(0)
                p = yield from wait_rounds(p, 100)
                return p

            percept = yield from run_segment(percept, inner(percept), budget)
            return percept

        visited, final = drive(g, 0, algorithm)
        assert final == 0
        assert len(visited) - 1 == 2 * budget

    def test_two_agents_identical_segment_duration(self):
        # Different positions, same parameters => same duration: the
        # phase-accounting invariant of UniversalRV.
        g = path_graph(4)
        durations = []
        budget = 9
        for start in (0, 1, 3):

            def algorithm(percept):
                def inner(p):
                    while True:
                        p = yield Move(0)

                percept = yield from run_segment(percept, inner(percept), budget)
                return percept

            visited, final = drive(g, start, algorithm)
            durations.append(len(visited) - 1)
            assert final == start
        assert len(set(durations)) == 1
