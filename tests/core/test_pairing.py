"""Unit tests for the pairing bijections f and g (Section 3.2)."""

import pytest

from repro.core import pair, triple, unpair, untriple


class TestPair:
    def test_formula_examples(self):
        # f(x, y) = x + (x+y-1)(x+y-2)/2
        assert pair(1, 1) == 1
        assert pair(1, 2) == 2
        assert pair(2, 1) == 3
        assert pair(1, 3) == 4
        assert pair(2, 2) == 5
        assert pair(3, 1) == 6

    def test_bijection_range(self):
        seen = {}
        for x in range(1, 40):
            for y in range(1, 40):
                p = pair(x, y)
                assert p not in seen, f"collision at {(x, y)} vs {seen[p]}"
                seen[p] = (x, y)
        # f is onto: the first N positive integers are all hit within
        # the enumerated square.
        covered = set(seen)
        assert all(i in covered for i in range(1, 500))

    def test_unpair_inverts(self):
        for p in range(1, 2000):
            x, y = unpair(p)
            assert x >= 1 and y >= 1
            assert pair(x, y) == p

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            pair(0, 1)
        with pytest.raises(ValueError):
            pair(1, 0)
        with pytest.raises(ValueError):
            unpair(0)


class TestTriple:
    def test_inverts(self):
        for p in range(1, 3000):
            x, y, z = untriple(p)
            assert triple(x, y, z) == p

    def test_enumeration_hits_all_small_triples(self):
        seen = set()
        for p in range(1, 30000):
            seen.add(untriple(p))
        for x in range(1, 6):
            for y in range(1, 6):
                for z in range(1, 6):
                    assert (x, y, z) in seen

    def test_growth_bound(self):
        # Proposition 4.1's counting: g(n, d, delta) = O(n^4 + d^4 + delta^2).
        for n in range(1, 12):
            for d in range(1, n):
                for delta in range(0, 12):
                    assert triple(n, d, delta + 1) <= 40 * (
                        n**4 + d**4 + (delta + 1) ** 2 + 1
                    )


class TestLargeValues:
    def test_arbitrary_precision(self):
        # The phase index of a large decisive triple must round-trip
        # exactly (Python ints are exact; this guards against any
        # future numpy-ification of the pairing path).
        big = (10**9, 10**9 - 1, 10**6)
        assert untriple(triple(*big)) == big

    def test_unpair_large(self):
        p = pair(10**12, 7)
        assert unpair(p) == (10**12, 7)
