"""White-box checks of the *mechanisms* inside the Section 3 proofs —
not just outcomes, but the specific events the arguments rely on."""

from itertools import product

from repro.core import explore, make_symm_rv_algorithm, symm_rv_time_bound
from repro.core.profile import TUNED
from repro.graphs import oriented_ring, oriented_torus, path_graph, torus_node
from repro.sim import Move, Wait, WaitBlock, run_rendezvous, run_single_agent
from repro.symmetry import shrink, shrink_witness


class TestExploreLexOrder:
    def test_walks_enumerated_in_lexicographic_order(self):
        """Algorithm 2 requires 'lexicographic order of corresponding
        port sequences'; recover the order from a traced run."""
        g = oriented_torus(3, 3)
        d, delta = 2, 2
        actions = []

        def algorithm(percept):
            inner = explore(percept, d, delta)
            action = next(inner)
            while True:
                actions.append(action)
                percept = yield action
                try:
                    action = inner.send(percept)
                except StopIteration:
                    return

        run_single_agent(g, 0, algorithm, max_rounds=10**6)
        # Expand to one action per round, then chunk into (d + delta)-
        # round iterations: rounds [0, d) of each chunk are the forward
        # walk of that iteration.
        per_round: list = []
        for action in actions:
            if isinstance(action, WaitBlock):
                per_round.extend([Wait()] * action.rounds)
            else:
                per_round.append(action)
        assert len(per_round) % (d + delta) == 0
        sequences = []
        for i in range(0, len(per_round), d + delta):
            chunk = per_round[i : i + d + delta]
            assert all(isinstance(a, Move) for a in chunk[: 2 * d])
            assert all(isinstance(a, Wait) for a in chunk[2 * d :])
            sequences.append(tuple(a.port for a in chunk[:d]))
        # All walks of length 2 from a degree-4 node: 16 sequences.
        expected = sorted(product(range(4), repeat=2))
        assert sequences == [tuple(s) for s in expected]


class TestLemma32Mechanism:
    def test_meeting_happens_at_shrink_witness_distance_zero(self):
        """Lemma 3.2's argument: the earlier agent walks the witness
        path into the later agent's waiting window.  Verify that at the
        meeting round the later agent is stationary (its position equals
        its position one round earlier) while the earlier agent arrived
        by a move."""
        g = oriented_ring(6)
        u, v = 0, 3
        d = shrink(g, u, v)
        delta = d
        uxs = TUNED.uxs(6)
        algorithm = make_symm_rv_algorithm(6, d, delta, uxs=uxs)
        bound = symm_rv_time_bound(6, d, delta, len(uxs))
        result = run_rendezvous(
            g, u, v, delta, algorithm,
            max_rounds=bound + delta + 5, record_traces=True,
        )
        assert result.met
        trace_early, trace_late = result.traces
        t_meet = result.meeting_time

        def moved_at(trace, t):
            return any(
                isinstance(e.action, Move) and e.time == t for e in trace.entries
            )

        # Earlier agent moved into the meeting; later agent did not.
        assert moved_at(trace_early, t_meet - 1)
        assert not moved_at(trace_late, t_meet - 1)

    def test_witness_pair_realizable_by_both_agents(self):
        """The witness sequence alpha is applicable at both u and v and
        lands them at distance Shrink — the setup of Lemma 3.2."""
        g = oriented_torus(3, 3)
        u, v = 0, torus_node(1, 1, 3)
        value, alpha, (x, y) = shrink_witness(g, u, v)
        assert g.apply_port_sequence(u, alpha) == x
        assert g.apply_port_sequence(v, alpha) == y
        assert g.distance(x, y) == value == 2


class TestLemma31Mechanism:
    def test_symmetric_agents_port_streams_coincide(self):
        """Lemma 3.1's engine: from symmetric starts, the two agents'
        outgoing-port streams are identical (shifted by delta)."""
        g = oriented_ring(6)
        algorithm = make_symm_rv_algorithm(6, 2, 2, uxs=TUNED.uxs(6)[:30])
        result = run_rendezvous(
            g, 0, 3, 2, algorithm, max_rounds=4000, record_traces=True
        )
        assert not result.met  # delta 2 < Shrink 3
        early, late = result.traces
        ports_early = [p for p, _ in early.port_history()]
        ports_late = [p for p, _ in late.port_history()]
        k = min(len(ports_early), len(ports_late))
        assert ports_early[:k] == ports_late[:k]

    def test_asymmetric_agents_port_streams_diverge(self):
        """...whereas non-symmetric agents' streams must eventually
        differ — that divergence is what AsymmRV amplifies."""
        from repro.core.dedicated import dedicated_rendezvous

        g = path_graph(3)
        result = dedicated_rendezvous(g, 0, 2, 0, record_traces=True)
        assert result.met
        early, late = result.traces
        assert early.port_history() != late.port_history()
