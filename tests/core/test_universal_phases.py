"""White-box tests of UniversalRV's phase accounting.

Theorem 3.1's proof rests on one structural invariant: *every phase
segment has a position-independent duration and returns the agent to
its starting node*.  These tests drive a single agent through several
phases and check both properties against the closed-form
``phase_duration``.
"""

from repro.core import phase_duration
from repro.core.profile import tuned_profile
from repro.core.universal import universal_rv
from repro.graphs import oriented_ring, path_graph
from repro.sim import run_single_agent

# A deliberately tiny profile so several phases fit in a short run.
PROFILE = tuned_profile(
    view_mode="faithful", uxs_scale=1, view_depth_cap=1, name="phase-probe"
)


def phase_boundaries(profile, count):
    """Cumulative round offsets of the first ``count`` phase ends."""
    boundaries = []
    total = 0
    for p in range(1, count + 1):
        total += phase_duration(profile, p)
        boundaries.append(total)
    return boundaries


class TestPhaseStructure:
    def test_agent_home_at_every_phase_boundary(self):
        g = oriented_ring(4)
        boundaries = phase_boundaries(PROFILE, 8)

        def algorithm(percept):
            yield from universal_rv(percept, PROFILE)

        for start in (0, 2):
            visited, _ = run_single_agent(
                g, start, algorithm, max_rounds=boundaries[-1]
            )
            for b in boundaries:
                assert visited[b] == start, f"not home at phase boundary {b}"

    def test_durations_position_independent(self):
        # Same graph, different (non-symmetric) positions: identical
        # home-visit pattern at boundaries.
        g = path_graph(4)
        boundaries = phase_boundaries(PROFILE, 6)

        def algorithm(percept):
            yield from universal_rv(percept, PROFILE)

        for start in range(4):
            visited, _ = run_single_agent(
                g, start, algorithm, max_rounds=boundaries[-1]
            )
            for b in boundaries:
                assert visited[b] == start

    def test_phase_durations_positive_when_executed(self):
        from repro.core.pairing import untriple

        for p in range(1, 40):
            n, d, delta_code = untriple(p)
            duration = phase_duration(PROFILE, p)
            if d < n:
                assert duration > 0
            else:
                assert duration == 0

    def test_durations_monotone_in_delta_assumption(self):
        # For a fixed (n, d), larger assumed delay means a longer phase.
        from repro.core.pairing import triple

        d1 = phase_duration(PROFILE, triple(3, 1, 2))
        d2 = phase_duration(PROFILE, triple(3, 1, 5))
        assert d2 > d1
