"""Unit tests for Procedure Explore (Algorithm 2)."""

import pytest

from repro.core import count_walks, explore, explore_round_count
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.sim import run_single_agent


def explore_alg(d, delta):
    def algorithm(percept):
        percept = yield from explore(percept, d, delta)
        return percept

    return algorithm


class TestExplore:
    @pytest.mark.parametrize(
        "graph,start,d,delta",
        [
            (two_node_graph(), 0, 1, 1),
            (oriented_ring(5), 2, 1, 3),
            (oriented_ring(5), 0, 2, 2),
            (path_graph(4), 1, 2, 4),
            (star_graph(3), 0, 2, 2),
            (oriented_torus(3, 3), 4, 2, 3),
        ],
    )
    def test_returns_home_with_exact_duration(self, graph, start, d, delta):
        expected = explore_round_count(graph, start, d, delta)
        visited, final = run_single_agent(
            graph, start, explore_alg(d, delta), max_rounds=expected + 10
        )
        assert final == start
        assert len(visited) - 1 == expected  # rounds consumed

    def test_visits_all_walk_endpoints(self):
        # Every node within distance d must be touched.
        g = oriented_torus(3, 3)
        d = 2
        visited, _ = run_single_agent(
            g, 0, explore_alg(d, d), max_rounds=10**6
        )
        within = {v for v in range(g.n) if g.distance(0, v) <= d}
        assert within <= set(visited)

    def test_wait_tail_at_home(self):
        # With delta > d, each iteration ends with delta - d rounds at
        # the origin: origin must appear in long runs.
        g = oriented_ring(4)
        visited, _ = run_single_agent(g, 0, explore_alg(1, 5), max_rounds=10**4)
        # per iteration: 1 out, 1 back, 4 wait -> 5 of 6 rounds at home
        assert visited.count(0) > len(visited) * 0.6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            list(explore(None, 0, 1))  # d < 1
        with pytest.raises(ValueError):
            list(explore(None, 2, 1))  # delta < d

    def test_lockstep_on_symmetric_nodes(self):
        # Two symmetric agents enumerate identical degree profiles, so
        # their explore runs have identical durations.
        g = oriented_ring(6)
        d, delta = 2, 3
        assert explore_round_count(g, 0, d, delta) == explore_round_count(
            g, 3, d, delta
        )


class TestCountWalks:
    def test_ring(self):
        g = oriented_ring(5)
        assert count_walks(g, 0, 1) == 2
        assert count_walks(g, 0, 3) == 8

    def test_path_endpoint(self):
        g = path_graph(4)
        # from an endpoint: 1 walk of length 1, then branching at inner nodes
        assert count_walks(g, 0, 1) == 1
        assert count_walks(g, 0, 2) == 2

    def test_bound_of_lemma(self):
        # count_walks <= (n-1)^d, the bound used in Lemma 3.3.
        for g in (oriented_ring(5), star_graph(4), oriented_torus(3, 3)):
            for d in (1, 2, 3):
                for v in range(g.n):
                    assert count_walks(g, v, d) <= (g.n - 1) ** d

    def test_explore_round_count_formula(self):
        g = two_node_graph()
        # 1 walk of length 1, each iteration costs d + delta = 4.
        assert explore_round_count(g, 0, 1, 3) == 4
