"""Tests for Procedure SymmRV (Algorithm 1) and Lemmas 3.2 / 3.3."""

import pytest

from repro.core import (
    make_symm_rv_algorithm,
    symm_rv,
    symm_rv_time_bound,
)
from repro.core.profile import TUNED
from repro.core.uxs import is_uxs_for_graph
from repro.graphs import (
    complete_graph,
    hypercube,
    mirror_node,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.sim import run_rendezvous, run_single_agent
from repro.symmetry import shrink


def single_run_alg(n, d, delta, uxs):
    def algorithm(percept):
        percept = yield from symm_rv(percept, n, d, delta, uxs=uxs)
        return percept

    return algorithm


class TestStructure:
    def test_returns_to_origin(self):
        g = oriented_ring(4)
        uxs = TUNED.uxs(4)
        bound = symm_rv_time_bound(4, 1, 2, len(uxs))
        _, final = run_single_agent(
            g, 2, single_run_alg(4, 1, 2, uxs), max_rounds=bound + 5
        )
        assert final == 2

    def test_duration_within_lemma_bound(self):
        for g, d in [(oriented_ring(5), 2), (oriented_torus(3, 3), 2)]:
            uxs = TUNED.uxs(g.n)
            delta = d + 1
            bound = symm_rv_time_bound(g.n, d, delta, len(uxs))
            visited, _ = run_single_agent(
                g, 0, single_run_alg(g.n, d, delta, uxs), max_rounds=bound + 5
            )
            assert len(visited) - 1 <= bound

    def test_lockstep_duration_on_symmetric_pairs(self):
        # The correctness proof needs both agents to consume identical
        # round counts; verify on a symmetric pair.
        g = oriented_torus(3, 3)
        uxs = TUNED.uxs(9)[:40]
        lengths = []
        for start in (0, 4):
            visited, _ = run_single_agent(
                g, start, single_run_alg(9, 1, 2, uxs), max_rounds=10**6
            )
            lengths.append(len(visited))
        assert lengths[0] == lengths[1]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            list(symm_rv(None, 3, 3, 3))  # d >= n
        with pytest.raises(ValueError):
            list(symm_rv(None, 3, 1, 0))  # delta < d


class TestLemma32:
    @pytest.mark.parametrize(
        "graph,u,v",
        [
            (two_node_graph(), 0, 1),
            (oriented_ring(5), 0, 1),
            (oriented_ring(5), 0, 2),
            (oriented_ring(6), 0, 3),
            (oriented_torus(3, 3), 0, torus_node(1, 1, 3)),
            (complete_graph(4), 0, 2),
            (symmetric_tree(2, 1), 2, mirror_node(2, 2, 1)),
            (hypercube(3), 0, 5),
        ],
        ids=["P2", "ring5-1", "ring5-2", "ring6-opp", "torus", "K4", "tree", "cube"],
    )
    def test_rendezvous_at_exact_shrink_delay(self, graph, u, v):
        n = graph.n
        d = shrink(graph, u, v)
        delta = d
        uxs = TUNED.uxs(n)
        assert is_uxs_for_graph(graph, uxs)
        bound = symm_rv_time_bound(n, d, delta, len(uxs))
        result = run_rendezvous(
            graph, u, v, delta,
            make_symm_rv_algorithm(n, d, delta, uxs=uxs),
            max_rounds=bound + delta + 5,
        )
        assert result.met
        assert result.time_from_later <= bound

    def test_rendezvous_with_slack_delay(self):
        g = oriented_ring(6)
        d = shrink(g, 0, 3)
        for delta in (d, d + 1, d + 3):
            uxs = TUNED.uxs(6)
            bound = symm_rv_time_bound(6, d, delta, len(uxs))
            result = run_rendezvous(
                g, 0, 3, delta,
                make_symm_rv_algorithm(6, d, delta, uxs=uxs),
                max_rounds=bound + delta + 5,
            )
            assert result.met, delta

    def test_below_shrink_fails(self):
        # Running SymmRV with delta below Shrink cannot help (Lemma 3.1):
        # the procedure is executed but no meeting happens.
        g = oriented_ring(6)
        uxs = TUNED.uxs(6)[:60]
        d = 3
        delta = 2  # < Shrink = 3
        algorithm = make_symm_rv_algorithm(6, d, delta, uxs=uxs)
        # SymmRV requires delta >= d; use d = delta to get a legal but
        # under-provisioned run.
        algorithm = make_symm_rv_algorithm(6, 2, 2, uxs=uxs)
        bound = symm_rv_time_bound(6, 2, 2, len(uxs))
        result = run_rendezvous(g, 0, 3, 2, algorithm, max_rounds=2 * bound)
        assert not result.met
