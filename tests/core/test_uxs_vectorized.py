"""Differential suite: the vectorized UXS engine against the scalar
definitions.

Three layers must be bit-identical:

* **stream generation** — :func:`generate_offset_stream` against a
  literal :class:`SplitMix64` ``randrange`` loop (including the
  rejection-sampling path and power-of-two bounds, where the scalar
  sampler never rejects);
* **application** — :func:`apply_uxs_all` rows against per-start
  :func:`apply_uxs`, over random graphs and the exhaustive ``n <= 4``
  class;
* **certification** — :func:`is_uxs_for_graph` (vectorized) against
  the retained full-walk :func:`is_uxs_for_graph_scalar`, on covering
  and non-covering sequences.

Plus the ``covers_from`` early-exit regression: certification cost
(steps walked) stops growing once coverage is reached, however long
the sequence.
"""

import numpy as np
import pytest

from repro.core.profile import _tuned_uxs
from repro.core.uxs import (
    _cover_steps,
    apply_uxs,
    covers_from,
    is_uxs_for_graph,
    is_uxs_for_graph_scalar,
    uxs_for_size,
    uxs_length,
)
from repro.core.uxs_engine import (
    apply_uxs_all,
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
    splitmix64_block,
)
from repro.graphs.enumeration import enumerate_port_labeled_graphs
from repro.graphs.families import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.graphs.random_graphs import random_connected_graph
from repro.util.lcg import SplitMix64, derive_seed

RANDOM_GRAPHS = [
    random_connected_graph(n, extra, seed=seed)
    for n in (2, 4, 5, 7, 9, 12)
    for extra in (0, 3)
    for seed in (1, 5)
]
STRUCTURED_GRAPHS = [
    two_node_graph(),
    path_graph(5),
    star_graph(4),
    oriented_ring(8),
    oriented_torus(3, 3),
]


def scalar_stream(seed, bound, length):
    rng = SplitMix64(seed)
    return [rng.randrange(bound) for _ in range(length)]


# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------
def test_splitmix_block_matches_scalar_generator():
    for seed in (0, 1, 42, 2**64 - 3, derive_seed("uxs", 9)):
        reference = SplitMix64(seed)
        expected = [reference.next_u64() for _ in range(200)]
        block = splitmix64_block(seed, 0, 200)
        assert [int(x) for x in block] == expected
        # Arbitrary offsets splice into the same stream.
        tail = splitmix64_block(seed, 150, 50)
        assert [int(x) for x in tail] == expected[150:]


@pytest.mark.parametrize(
    "bound",
    [1, 2, 3, 5, 7, 10, 16, 20, 64, 1000],  # 2, 16, 64: no-rejection path
)
def test_offset_stream_matches_scalar_randrange(bound):
    for seed in (7, derive_seed("uxs", 5), derive_seed("uxs-tuned", 6, 12)):
        vectorized = generate_offset_stream(seed, bound, 3000)
        assert [int(x) for x in vectorized] == scalar_stream(seed, bound, 3000)


def test_offset_stream_is_prefix_stable():
    seed = derive_seed("uxs", 11)
    long = generate_offset_stream(seed, 22, 5000)
    short = generate_offset_stream(seed, 22, 1234)
    assert np.array_equal(long[:1234], short)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_uxs_for_size_matches_scalar_loop(n):
    expected = scalar_stream(derive_seed("uxs", n), max(2 * n, 2), uxs_length(n))
    assert list(uxs_for_size(n)) == expected


def test_tuned_uxs_matches_scalar_loop():
    for n, scale in ((4, 12), (6, 12), (5, 3)):
        expected = scalar_stream(
            derive_seed("uxs-tuned", n, scale), max(2 * n, 2), scale * n * n
        )
        assert list(_tuned_uxs(n, scale)) == expected


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------
def random_sequence(seed, bound, length):
    rng = SplitMix64(seed)
    return tuple(rng.randrange(bound) for _ in range(length))


@pytest.mark.parametrize("graph", RANDOM_GRAPHS + STRUCTURED_GRAPHS, ids=repr)
def test_apply_uxs_all_matches_scalar_rows(graph):
    seq = random_sequence(derive_seed("vec-apply", graph.n), 2 * graph.n, 400)
    matrix = apply_uxs_all(graph, seq)
    assert matrix.shape == (graph.n, len(seq) + 2)
    for start in range(graph.n):
        assert list(matrix[start]) == apply_uxs(graph, start, seq)


def test_apply_uxs_all_exhaustive_small_class():
    for n in (2, 3, 4):
        seq = random_sequence(derive_seed("vec-apply-ex", n), 2 * n, 48)
        for graph in enumerate_port_labeled_graphs(n):
            matrix = apply_uxs_all(graph, seq)
            for start in range(n):
                assert list(matrix[start]) == apply_uxs(graph, start, seq)


def test_covered_counts_match_scalar_visit_sets():
    for graph in RANDOM_GRAPHS:
        seq = random_sequence(derive_seed("vec-cover", graph.n), 2 * graph.n, 300)
        counts = covered_counts(graph, seq, stop_when_all_covered=False)
        for start in range(graph.n):
            assert int(counts[start]) == len(set(apply_uxs(graph, start, seq)))


def test_huge_offsets_stay_cheap_and_bit_identical():
    """Offsets only matter modulo the local degree, so terms like 10^9
    are legal UXS input; the vectorized walk must neither allocate a
    symbol table proportional to the value (regression: it used to
    size the table to max(seq)+1) nor diverge from the scalar walk."""
    graph = oriented_ring(6)
    seq = (10**9, 3, 10**15 + 7, 0, 123456789, 5, 2)
    matrix = apply_uxs_all(graph, seq)
    for start in range(graph.n):
        assert list(matrix[start]) == apply_uxs(graph, start, seq)
    counts = covered_counts(graph, seq, stop_when_all_covered=False)
    for start in range(graph.n):
        assert int(counts[start]) == len(set(apply_uxs(graph, start, seq)))
    assert is_uxs_for_graph_vectorized(graph, seq * 40) == is_uxs_for_graph_scalar(
        graph, seq * 40
    )


def test_covered_counts_chunk_size_is_observationally_neutral():
    graph = random_connected_graph(9, 4, seed=2)
    seq = random_sequence(3, 2 * graph.n, 700)
    baseline = covered_counts(graph, seq, stop_when_all_covered=False)
    for chunk in (1, 7, 64, 4096):
        assert np.array_equal(
            covered_counts(
                graph, seq, chunk=chunk, stop_when_all_covered=False
            ),
            baseline,
        )


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("graph", RANDOM_GRAPHS + STRUCTURED_GRAPHS, ids=repr)
def test_certification_matches_scalar(graph):
    n = graph.n
    # Short prefixes straddle the covering threshold; the scalar and
    # vectorized verdicts must agree on every one of them.
    full = random_sequence(derive_seed("vec-cert", n), 2 * n, 64 * n)
    for length in (0, 1, n, 4 * n, len(full)):
        seq = full[:length]
        assert is_uxs_for_graph_vectorized(graph, seq) == is_uxs_for_graph_scalar(
            graph, seq
        )
    assert is_uxs_for_graph(graph, full) == is_uxs_for_graph_scalar(graph, full)


def test_certification_full_reference_sequence_small_n():
    for graph in (oriented_ring(5), random_connected_graph(6, 2, seed=8)):
        seq = uxs_for_size(graph.n)
        assert is_uxs_for_graph(graph, seq)
        assert is_uxs_for_graph_scalar(graph, seq)


def test_single_node_graph_is_trivially_covered():
    from repro.graphs.port_graph import PortLabeledGraph

    g = PortLabeledGraph(1, [])
    assert is_uxs_for_graph_vectorized(g, (0, 1, 0))
    assert covers_from(g, 0, (0, 1, 0))
    assert np.array_equal(covered_counts(g, (0, 1)), np.ones(1, dtype=np.int64))


# ---------------------------------------------------------------------------
# covers_from early exit (regression)
# ---------------------------------------------------------------------------
def test_covers_from_cost_stops_growing_once_covered():
    """Doubling (or 10x-ing) an already-covering sequence must not
    change the number of steps the scalar certifier walks."""
    graph = oriented_torus(3, 3)
    seq = uxs_for_size(graph.n)
    for start in range(graph.n):
        covered, steps = _cover_steps(graph, start, seq)
        assert covered
        assert steps < len(seq)  # the early exit actually fired
        covered2, steps2 = _cover_steps(graph, start, tuple(seq) + tuple(seq))
        covered10, steps10 = _cover_steps(graph, start, tuple(seq) * 10)
        assert (covered2, steps2) == (True, steps)
        assert (covered10, steps10) == (True, steps)


def test_covers_from_non_covering_prefix_still_walks_everything():
    graph = oriented_ring(8)
    # A sequence of all-zero offsets bounces between two nodes: never
    # covers, and the walk must consume the entire sequence.
    seq = (0,) * 37
    covered, steps = _cover_steps(graph, 0, seq)
    assert not covered
    assert steps == len(seq) + 1
    assert not covers_from(graph, 0, seq)
    assert not is_uxs_for_graph_vectorized(graph, seq)
    assert not is_uxs_for_graph_scalar(graph, seq)
