"""Tests for universal exploration sequences, including the exhaustive
small-size certification promised in DESIGN.md §2.1."""

import pytest

from repro.core import (
    apply_uxs,
    apply_uxs_ports,
    covers_from,
    is_uxs_for_graph,
    uxs_for_size,
    uxs_length,
)
from repro.core.profile import REFERENCE, TUNED
from repro.graphs import (
    complete_graph,
    hypercube,
    oriented_ring,
    oriented_torus,
    path_graph,
    random_connected_graph,
    star_graph,
    symmetric_tree,
)
from repro.graphs.enumeration import enumerate_port_labeled_graphs


class TestApplication:
    def test_application_semantics(self):
        # u1 = succ(u0, 0); u_{i+1} = succ(u_i, (p + a_i) mod d).
        g = oriented_ring(5)
        walk = apply_uxs(g, 0, [0, 0])
        # step 1: 0 -> 1 (port 0); entered by port 1.
        # a=0: port (1+0)%2=1 -> back to 0; entered by port 0.
        # a=0: port (0+0)%2=0 -> 1.
        assert walk == [0, 1, 0, 1]

    def test_ports_match_walk(self):
        g = oriented_torus(3, 3)
        seq = TUNED.uxs(9)[:50]
        ports = apply_uxs_ports(g, 4, seq)
        node = 4
        for p in ports:
            node = g.succ(node, p)
        assert node == apply_uxs(g, 4, seq)[-1]
        assert len(ports) == len(seq) + 1

    def test_length_formula(self):
        assert uxs_length(1) == 1
        assert uxs_length(4) > uxs_length(2)
        with pytest.raises(ValueError):
            uxs_length(0)

    def test_sequences_are_deterministic(self):
        assert uxs_for_size(5) == uxs_for_size(5)


class TestCoverageCertification:
    @pytest.mark.parametrize("n", [2, 3])
    def test_exhaustive_certification_small(self, n):
        """Tuned and reference Y(n) cover every port-labeled graph of
        size n from every start — the exhaustive tier."""
        tuned = TUNED.uxs(n)
        reference = REFERENCE.uxs(n)
        for g in enumerate_port_labeled_graphs(n):
            assert is_uxs_for_graph(g, tuned)
            assert is_uxs_for_graph(g, reference)

    def test_exhaustive_certification_n4_tuned(self):
        tuned = TUNED.uxs(4)
        for g in enumerate_port_labeled_graphs(4):
            assert is_uxs_for_graph(g, tuned)

    @pytest.mark.parametrize(
        "graph",
        [
            oriented_ring(6),
            oriented_torus(3, 3),
            path_graph(7),
            star_graph(5),
            symmetric_tree(2, 2),
            hypercube(3),
            complete_graph(6),
        ],
        ids=["ring6", "torus9", "path7", "star6", "tree14", "cube8", "K6"],
    )
    def test_family_coverage_tuned(self, graph):
        assert is_uxs_for_graph(graph, TUNED.uxs(graph.n))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graph_coverage(self, seed):
        g = random_connected_graph(9, extra_edges=4, seed=seed)
        assert is_uxs_for_graph(g, TUNED.uxs(9))

    def test_covers_from_detects_failure(self):
        g = path_graph(6)
        assert not covers_from(g, 0, [0])  # two steps cannot see 6 nodes

    def test_single_node(self):
        from repro.graphs.port_graph import PortLabeledGraph

        g = PortLabeledGraph(1, [])
        assert is_uxs_for_graph(g, ())


class TestMinimalVerified:
    def test_genuinely_universal(self):
        from repro.core import minimal_verified_uxs

        for n in (2, 3):
            seq = minimal_verified_uxs(n)
            for g in enumerate_port_labeled_graphs(n):
                assert is_uxs_for_graph(g, seq)

    def test_much_shorter_than_default(self):
        from repro.core import minimal_verified_uxs

        for n in (2, 3, 4):
            assert len(minimal_verified_uxs(n)) < len(TUNED.uxs(n))

    def test_guard_rails(self):
        from repro.core import minimal_verified_uxs

        with pytest.raises(ValueError):
            minimal_verified_uxs(0)
        with pytest.raises(ValueError):
            minimal_verified_uxs(9)

    def test_single_node_trivial(self):
        from repro.core import minimal_verified_uxs

        assert minimal_verified_uxs(1) == ()


class TestSequenceCache:
    """``uxs_for_size`` memoization is bounded by total retained terms,
    not entry count — a single ``Y(n)`` is ~36M ints at n = 50, so an
    entry-counting LRU could pin gigabytes (see ISSUE 1)."""

    @pytest.fixture()
    def small_budget(self, monkeypatch):
        from repro.core import uxs as uxs_module

        saved = dict(uxs_module._UXS_CACHE)
        saved_total = uxs_module._uxs_cache_total
        uxs_module._UXS_CACHE.clear()
        monkeypatch.setattr(uxs_module, "_uxs_cache_total", 0)
        yield uxs_module
        uxs_module._UXS_CACHE.clear()
        uxs_module._UXS_CACHE.update(saved)
        uxs_module._uxs_cache_total = saved_total

    def test_determinism_survives_eviction(self, small_budget):
        mod = small_budget
        first = {n: uxs_for_size(n) for n in (1, 2, 3)}
        # Evict everything by shrinking the budget below any entry.
        mod._UXS_CACHE.clear()
        mod._uxs_cache_total = 0
        for n, seq in first.items():
            assert uxs_for_size(n) == seq
            assert len(seq) == uxs_length(n)

    def test_total_retained_length_bounded(self, small_budget, monkeypatch):
        mod = small_budget
        budget = uxs_length(2) + uxs_length(1) + 10
        monkeypatch.setattr(mod, "_UXS_CACHE_BUDGET", budget)
        for n in (1, 2, 3, 2, 1, 3):
            uxs_for_size(n)
            total = sum(len(s) for s in mod._UXS_CACHE.values())
            assert total == mod._uxs_cache_total
            assert total <= budget

    def test_oversized_sequences_returned_uncached(self, small_budget, monkeypatch):
        mod = small_budget
        monkeypatch.setattr(mod, "_UXS_CACHE_BUDGET", uxs_length(2))
        a = uxs_for_size(3)  # longer than the whole budget
        assert 3 not in mod._UXS_CACHE
        assert a == uxs_for_size(3)  # still deterministic

    def test_lru_eviction_order(self, small_budget, monkeypatch):
        mod = small_budget
        monkeypatch.setattr(
            mod, "_UXS_CACHE_BUDGET", uxs_length(2) + uxs_length(1) - 1
        )
        uxs_for_size(1)
        uxs_for_size(2)  # pushes total over budget -> evicts n=1
        assert 1 not in mod._UXS_CACHE
        assert 2 in mod._UXS_CACHE
