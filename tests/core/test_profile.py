"""Tests for execution profiles (reference vs tuned)."""

import pytest

from repro.core.profile import REFERENCE, TUNED, Profile, tuned_profile
from repro.core.uxs import is_uxs_for_graph, uxs_for_size
from repro.graphs import oriented_ring, path_graph


class TestProfiles:
    def test_reference_uses_paper_constants(self):
        assert REFERENCE.uxs(3) == uxs_for_size(3)
        assert REFERENCE.view_depth(5) == 4
        assert REFERENCE.label_mode == "padded"
        assert REFERENCE.view_mode == "faithful"

    def test_tuned_is_smaller(self):
        for n in (3, 5, 8):
            assert len(TUNED.uxs(n)) < len(REFERENCE.uxs(n))
            assert TUNED.asymm_bound(n) < REFERENCE.asymm_bound(n)

    def test_profiles_are_pure(self):
        # Same constructor args -> identical parameter schedules: the
        # agent-agreement property.
        a = tuned_profile(uxs_scale=7)
        b = tuned_profile(uxs_scale=7)
        assert a.uxs(5) == b.uxs(5)
        assert a.asymm_bound(5) == b.asymm_bound(5)
        assert a.symm_bound(5, 2, 3) == b.symm_bound(5, 2, 3)

    def test_view_depth_cap(self):
        capped = tuned_profile(view_depth_cap=2)
        assert capped.view_depth(10) == 2
        assert capped.view_depth(2) == 1

    def test_symm_bound_matches_formula(self):
        from repro.core.bounds import symm_rv_time_bound

        n, d, delta = 5, 2, 3
        assert TUNED.symm_bound(n, d, delta) == symm_rv_time_bound(
            n, d, delta, len(TUNED.uxs(n))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Profile("x", label_mode="crc", view_mode="oracle", uxs_scale=1)
        with pytest.raises(ValueError):
            Profile("x", label_mode="hash16", view_mode="psychic", uxs_scale=1)

    def test_tuned_uxs_covers_workloads(self):
        for g in (oriented_ring(7), path_graph(8)):
            assert is_uxs_for_graph(g, TUNED.uxs(g.n))

    def test_asymm_params_coherent(self):
        params = TUNED.asymm_params(6)
        assert params.n == 6
        assert params.depth == TUNED.view_depth(6)
        assert params.uxs == TUNED.uxs(6)
        assert params.label_mode == "hash16"
