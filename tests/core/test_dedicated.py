"""Tests for dedicated (instance-aware) rendezvous plans."""

import pytest

from repro.core.dedicated import (
    InfeasibleSTIC,
    dedicated_rendezvous,
    plan_dedicated,
)
from repro.core.universal import rendezvous
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)


class TestPlanning:
    def test_symmetric_gets_symm_plan(self):
        plan = plan_dedicated(oriented_ring(6), 0, 3, 3)
        assert plan.kind == "symm" and not plan.needs_oracles

    def test_nonsymmetric_gets_asymm_plan(self):
        plan = plan_dedicated(path_graph(4), 0, 3, 0)
        assert plan.kind == "asymm" and plan.needs_oracles

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleSTIC, match="Lemma 3.1"):
            plan_dedicated(two_node_graph(), 0, 1, 0)

    def test_bound_is_positive(self):
        plan = plan_dedicated(oriented_torus(3, 3), 0, 4, 2)
        assert plan.bound > 0


class TestExecution:
    @pytest.mark.parametrize(
        "graph,u,v,delta",
        [
            (two_node_graph(), 0, 1, 1),
            (oriented_ring(6), 0, 3, 3),
            (oriented_torus(3, 3), 0, torus_node(1, 1, 3), 2),
            (symmetric_tree(2, 2), 0, 7, 1),
            (path_graph(4), 0, 3, 2),
            (star_graph(3), 1, 2, 0),
        ],
        ids=["P2", "ring", "torus", "tree", "path", "star"],
    )
    def test_meets_within_bound(self, graph, u, v, delta):
        plan = plan_dedicated(graph, u, v, delta)
        result = dedicated_rendezvous(graph, u, v, delta)
        assert result.met
        assert result.time_from_later <= plan.bound

    def test_dedicated_cheaper_guarantee_than_universal(self):
        # The *guaranteed* bound of the dedicated plan is far below the
        # universal budget — the price of universality, quantified.
        from repro.core import universal_round_budget
        from repro.core.profile import TUNED

        g = oriented_ring(6)
        plan = plan_dedicated(g, 0, 3, 3)
        universal_budget = universal_round_budget(TUNED, 6, 3, 3)
        assert plan.bound * 10 < universal_budget

    def test_agrees_with_universal_on_feasibility(self):
        g = oriented_ring(4)
        for delta in (2, 3):
            dedicated = dedicated_rendezvous(g, 0, 2, delta)
            universal = rendezvous(g, 0, 2, delta)
            assert dedicated.met and universal.met
