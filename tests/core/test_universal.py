"""Tests for Algorithm UniversalRV (Theorem 3.1 / Corollary 3.1)."""

import pytest

from repro.core import (
    CertificationError,
    certify_instance,
    phase_duration,
    rendezvous,
    tuned_profile,
    universal_round_budget,
)
from repro.core.pairing import untriple
from repro.core.profile import TUNED
from repro.graphs import (
    complete_graph,
    labeled_ring,
    oriented_ring,
    path_graph,
    star_graph,
    symmetric_tree,
    two_node_graph,
)
from repro.symmetry import classify_stic, shrink


class TestFeasibleSTICs:
    @pytest.mark.parametrize(
        "graph,u,v,delta",
        [
            (two_node_graph(), 0, 1, 1),
            (two_node_graph(), 0, 1, 5),
            (oriented_ring(4), 0, 1, 1),
            (oriented_ring(4), 0, 2, 2),
            (oriented_ring(4), 0, 2, 4),
            (complete_graph(4), 0, 3, 1),
            (symmetric_tree(1, 1), 0, 2, 1),
        ],
        ids=["P2-d1", "P2-d5", "ring-adj", "ring-opp", "ring-opp-slack", "K4", "tree"],
    )
    def test_symmetric_feasible_meets(self, graph, u, v, delta):
        verdict = classify_stic(graph, u, v, delta)
        assert verdict.feasible and verdict.symmetric
        result = rendezvous(graph, u, v, delta)
        assert result.met
        budget = universal_round_budget(TUNED, graph.n, verdict.shrink, delta)
        assert result.time_from_later <= budget

    @pytest.mark.parametrize(
        "graph,u,v,delta",
        [
            (path_graph(3), 0, 2, 0),
            (path_graph(3), 0, 2, 4),
            (path_graph(4), 0, 3, 1),
            (star_graph(3), 1, 2, 0),
            (labeled_ring([(0, 1), (1, 0), (0, 1), (0, 1)]), 0, 3, 2),
        ],
        ids=["P3-d0", "P3-d4", "P4", "star", "labring"],
    )
    def test_nonsymmetric_meets_any_delay(self, graph, u, v, delta):
        verdict = classify_stic(graph, u, v, delta)
        assert verdict.feasible and not verdict.symmetric
        result = rendezvous(graph, u, v, delta)
        assert result.met

    def test_no_knowledge_needed(self):
        # The same algorithm object works across different graphs —
        # nothing about the instance is baked in except via oracles
        # (which expose only view-derived data).
        for graph, u, v, delta in [
            (two_node_graph(), 0, 1, 1),
            (path_graph(3), 0, 2, 0),
        ]:
            assert rendezvous(graph, u, v, delta).met


class TestInfeasibleSTICs:
    @pytest.mark.parametrize(
        "graph,u,v",
        [
            (two_node_graph(), 0, 1),
            (oriented_ring(4), 0, 2),
            (complete_graph(4), 0, 1),
        ],
    )
    def test_below_shrink_never_meets(self, graph, u, v):
        s = shrink(graph, u, v)
        for delta in range(s):
            result = rendezvous(graph, u, v, delta, max_rounds=40_000)
            assert not result.met


class TestPhaseAccounting:
    def test_phase_duration_zero_when_skipped(self):
        # Phases whose triple has d >= n are skipped.
        for p in range(1, 200):
            n, d, _ = untriple(p)
            if d >= n:
                assert phase_duration(TUNED, p) == 0

    def test_budget_is_sum_of_phases(self):
        total = universal_round_budget(TUNED, 2, 1, 1)
        from repro.core.pairing import triple

        assert total == sum(
            phase_duration(TUNED, p) for p in range(1, triple(2, 1, 2) + 1)
        )

    def test_duration_depends_only_on_profile_and_phase(self):
        assert phase_duration(TUNED, 17) == phase_duration(TUNED, 17)


class TestCertification:
    def test_uxs_shortfall_detected(self):
        # A profile with an absurdly short exploration sequence must be
        # rejected at certification time, not fail silently.
        broken = tuned_profile(uxs_scale=0, name="broken")
        g = oriented_ring(5)
        with pytest.raises(CertificationError, match="uxs_scale"):
            certify_instance(g, 0, 2, broken)

    def test_good_profile_certifies(self):
        certify_instance(oriented_ring(5), 0, 2, TUNED)

    def test_oracle_profile_requires_oracle(self):
        from repro.core import make_universal_algorithm
        from repro.sim.actions import Perception

        algorithm = make_universal_algorithm(TUNED)
        script = algorithm(Perception(degree=1, entry_port=None, clock=0))
        with pytest.raises(ValueError, match="oracle"):
            next(script)


class TestResultShape:
    def test_result_fields(self):
        result = rendezvous(two_node_graph(), 0, 1, 1, record_traces=True)
        assert result.met
        assert result.meeting_node in (0, 1)
        assert result.meeting_time == result.time_from_later + 1
        assert result.traces is not None

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            rendezvous(two_node_graph(), 0, 1, -1)
