"""Tests for the STIC value type, enumeration, and bound formulas."""

import pytest

from repro.core import (
    STIC,
    enumerate_stics,
    feasible_stics,
    infeasible_stics,
    symm_rv_time_bound,
    universal_time_envelope,
    walk_count_bound,
)
from repro.graphs import oriented_ring, path_graph, star_graph, two_node_graph
from repro.symmetry import classify_stic, shrink


class TestSTIC:
    def test_validation(self):
        with pytest.raises(ValueError):
            STIC(0, 0, 1)
        with pytest.raises(ValueError):
            STIC(0, 1, -1)

    def test_classify_delegates(self):
        g = two_node_graph()
        assert STIC(0, 1, 1).classify(g).feasible
        assert not STIC(0, 1, 0).classify(g).feasible


class TestEnumeration:
    def test_counts_on_two_node(self):
        g = two_node_graph()
        assert len(feasible_stics(g, max_delta=3)) == 3  # delta 1..3
        assert len(infeasible_stics(g, max_delta=3)) == 1  # delta 0

    def test_nonsymmetric_all_feasible(self):
        g = path_graph(3)
        infeasible = infeasible_stics(g, max_delta=2)
        # P3's only symmetric pair set is empty; everything is feasible.
        assert infeasible == []

    def test_matches_pointwise_classification(self):
        g = oriented_ring(4)
        for stic, verdict in enumerate_stics(g, max_delta=3):
            direct = classify_stic(g, stic.u, stic.v, stic.delta)
            assert verdict.feasible == direct.feasible, stic
            assert verdict.symmetric == direct.symmetric, stic

    def test_feasibility_boundary_is_shrink(self):
        g = oriented_ring(6)
        s = shrink(g, 0, 3)
        feasible = {x.delta for x in feasible_stics(g, 6) if (x.u, x.v) == (0, 3)}
        assert feasible == set(range(s, 7))

    def test_star_counts(self):
        g = star_graph(3)
        # all pairs non-symmetric -> all STICs feasible
        total = len(list(enumerate_stics(g, max_delta=1)))
        assert total == 6 * 2  # C(4,2) pairs x 2 delays
        assert len(feasible_stics(g, 1)) == total


class TestBounds:
    def test_walk_count_bound(self):
        assert walk_count_bound(5, 3) == 64
        assert walk_count_bound(1, 3) == 1

    def test_symm_rv_bound_formula(self):
        # T(n,d,delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1)
        assert symm_rv_time_bound(4, 2, 3, uxs_length=10) == (5 * 9) * 12 + 22

    def test_envelope_monotone(self):
        assert universal_time_envelope(3, 0) < universal_time_envelope(4, 0)
        assert universal_time_envelope(3, 1) < universal_time_envelope(3, 5)
