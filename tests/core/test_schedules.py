"""Tests for the activity-word construction — including the exhaustive
verification that stands in for a pen-and-paper proof (DESIGN.md §2.2)."""

from itertools import product

import pytest

from repro.core import (
    first_good_window,
    good_window_bound,
    schedule_word,
    verify_schedule_pair,
)


class TestConstruction:
    def test_word_shape(self):
        word = schedule_word((1, 0))
        assert word[:6] == (1, 1, 1, 0, 0, 0)  # marker
        assert word[6:10] == (1, 1, 0, 0)  # bit 1
        assert word[10:14] == (0, 0, 1, 1)  # bit 0
        assert len(word) == 6 + 4 * 2

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            schedule_word((2,))

    def test_activity_density_balanced(self):
        # Every bit block contributes exactly two active and two passive
        # slots; the marker adds three of each.
        for bits in ((0,), (1, 1), (1, 0, 1, 0)):
            word = schedule_word(bits)
            assert sum(word) == 3 + 2 * len(bits)
            assert len(word) - sum(word) == 3 + 2 * len(bits)


class TestMeetingProperty:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_exhaustive_equal_length(self, k):
        """For every pair of distinct k-bit labels and every slot
        shift, someone is active while the other is doubly passive."""
        labels = list(product((0, 1), repeat=k))
        for i, a in enumerate(labels):
            for b in labels[i + 1 :]:
                assert verify_schedule_pair(schedule_word(a), schedule_word(b))

    def test_exhaustive_unequal_length(self):
        for ka, kb in [(1, 2), (1, 3), (2, 3), (2, 4)]:
            for a in product((0, 1), repeat=ka):
                for b in product((0, 1), repeat=kb):
                    assert verify_schedule_pair(
                        schedule_word(a), schedule_word(b)
                    ), (a, b)

    def test_equal_labels_have_no_guarantee_at_zero_shift(self):
        # Identical words at shift 0 mirror each other: no window —
        # this is the symmetric case AsymmRV is not responsible for.
        word = schedule_word((1, 0, 1))
        assert first_good_window(word, word, 0) is None

    def test_window_within_bound(self):
        wa = schedule_word((1, 0))
        wb = schedule_word((0, 1))
        bound = good_window_bound(len(wa), len(wb))
        for shift in range(len(wa) * 2):
            found = first_good_window(wa, wb, shift)
            assert found is not None
            assert found[1] <= bound

    def test_window_roles(self):
        wa = schedule_word((1,))
        wb = schedule_word((0,))
        role, _ = first_good_window(wa, wb, 0)
        assert role in ("a", "b")


class TestBound:
    def test_bound_formula(self):
        assert good_window_bound(10, 10) == 10 + 10 + 2
        assert good_window_bound(4, 6) == 12 + 6 + 2
