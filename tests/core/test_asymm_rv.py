"""Tests for AsymmRV: slot mechanics, budgets, and Proposition 3.1."""

import pytest

from repro.core import (
    AsymmParams,
    asymm_meeting_bound,
    encode_graph_view,
    finalize_label,
    make_asymm_algorithm,
    slot_rounds,
    uxs_traverse_and_return,
    word_slots,
)
from repro.core.profile import REFERENCE, TUNED
from repro.core.universal import UniversalOracle
from repro.graphs import labeled_ring, path_graph, star_graph, two_node_graph
from repro.sim import run_rendezvous, run_single_agent
from repro.symmetry import are_symmetric


def params_for(graph, profile=TUNED):
    return profile.asymm_params(graph.n)


class TestActiveSlot:
    def test_fixed_duration_and_home(self):
        g = path_graph(4)
        uxs = TUNED.uxs(4)

        def algorithm(percept):
            percept = yield from uxs_traverse_and_return(percept, uxs)
            return percept

        for start in range(4):
            visited, final = run_single_agent(
                g, start, algorithm, max_rounds=10**5
            )
            assert final == start
            assert len(visited) - 1 == 2 * (len(uxs) + 1)

    def test_covers_graph(self):
        g = star_graph(4)
        uxs = TUNED.uxs(5)

        def algorithm(percept):
            percept = yield from uxs_traverse_and_return(percept, uxs)
            return percept

        visited, _ = run_single_agent(g, 0, algorithm, max_rounds=10**5)
        assert set(visited) == set(range(5))


class TestMeetingGuarantee:
    @pytest.mark.parametrize("delta", [0, 1, 2, 5, 9])
    def test_path_ends_meet_any_delay_oracle(self, delta):
        g = path_graph(3)
        assert not are_symmetric(g, 0, 2)
        params = params_for(g)
        bound = asymm_meeting_bound(params)
        algorithm = make_asymm_algorithm(params, use_oracle=True)
        oracles = (UniversalOracle(g, 0, TUNED), UniversalOracle(g, 2, TUNED))
        result = run_rendezvous(
            g, 0, 2, delta, algorithm,
            max_rounds=bound + delta + 1, oracles=oracles,
        )
        assert result.met
        assert result.time_from_later <= bound

    @pytest.mark.parametrize("delta", [0, 3])
    def test_star_leaves_meet(self, delta):
        g = star_graph(3)
        params = params_for(g)
        algorithm = make_asymm_algorithm(params, use_oracle=True)
        oracles = (UniversalOracle(g, 1, TUNED), UniversalOracle(g, 3, TUNED))
        result = run_rendezvous(
            g, 1, 3, delta, algorithm,
            max_rounds=asymm_meeting_bound(params) + delta + 1, oracles=oracles,
        )
        assert result.met

    def test_faithful_mode_meets(self):
        # Physical view reconstruction instead of oracles (tiny case).
        g = path_graph(3)
        profile = REFERENCE
        params = profile.asymm_params(3)
        algorithm = make_asymm_algorithm(params, use_oracle=False)
        bound = asymm_meeting_bound(params)
        result = run_rendezvous(g, 0, 2, 1, algorithm, max_rounds=bound + 2)
        assert result.met

    def test_faithful_and_oracle_both_meet_in_bound(self):
        # The two view modes differ in *trajectory* during acquisition
        # (walking vs waiting, same fixed budget) so meeting times may
        # differ; both must respect the same bound, and the labels they
        # derive are identical (tested in test_labels.py).
        g = path_graph(3)
        n = g.n
        tuned_params = AsymmParams(
            n=n,
            depth=TUNED.view_depth(n),
            uxs=TUNED.uxs(n),
            view_budget=TUNED.view_budget(n),
            label_mode="hash16",
        )
        faithful = make_asymm_algorithm(tuned_params, use_oracle=False)
        oracle_alg = make_asymm_algorithm(tuned_params, use_oracle=True)
        oracles = (UniversalOracle(g, 0, TUNED), UniversalOracle(g, 2, TUNED))
        bound = asymm_meeting_bound(tuned_params)
        r_f = run_rendezvous(g, 0, 2, 2, faithful, max_rounds=bound + 3)
        r_o = run_rendezvous(
            g, 0, 2, 2, oracle_alg, max_rounds=bound + 3, oracles=oracles
        )
        assert r_f.met and r_f.time_from_later <= bound
        assert r_o.met and r_o.time_from_later <= bound

    def test_nonuniform_ring_meets(self):
        g = labeled_ring([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert not are_symmetric(g, 0, 2)
        params = params_for(g)
        algorithm = make_asymm_algorithm(params, use_oracle=True)
        oracles = (UniversalOracle(g, 0, TUNED), UniversalOracle(g, 2, TUNED))
        result = run_rendezvous(
            g, 0, 2, 1, algorithm,
            max_rounds=asymm_meeting_bound(params) + 2, oracles=oracles,
        )
        assert result.met


class TestBudgets:
    def test_word_and_slot_formulas(self):
        g = path_graph(3)
        params = params_for(g)
        assert word_slots(params) == 6 + 4 * 16
        assert slot_rounds(params) == 2 * (len(params.uxs) + 1)

    def test_label_modes(self):
        g = path_graph(3)
        raw = encode_graph_view(g, 0, 2)
        p16 = AsymmParams(3, 2, (0,), 8, "hash16")
        p32 = AsymmParams(3, 2, (0,), 8, "hash32")
        assert len(finalize_label(raw, p16)) == 16
        assert len(finalize_label(raw, p32)) == 32
        padded = AsymmParams(3, 2, (0,), 8, "padded")
        bits = finalize_label(raw, padded)
        from repro.core import max_label_bits

        assert len(bits) == max_label_bits(3, 2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            finalize_label((1,), AsymmParams(3, 2, (0,), 8, "md5"))

    def test_symmetric_positions_give_equal_labels(self):
        # AsymmRV makes no promise here; but the durations must still
        # be identical, which run_segment guarantees by construction.
        g = two_node_graph()
        a = encode_graph_view(g, 0, 1)
        b = encode_graph_view(g, 1, 1)
        assert a == b
