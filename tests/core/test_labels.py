"""Tests for view-label encodings: oracle/faithful equivalence,
injectivity, padding, and budgets."""

import pytest

from repro.core import (
    encode_graph_view,
    encode_view_tree,
    hash_bits,
    max_label_bits,
    pad_bits,
    reconstruct_view,
    unpad_bits,
    view_reconstruction_budget,
)
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    two_node_graph,
)
from repro.graphs.enumeration import enumerate_port_labeled_graphs
from repro.sim import run_single_agent
from repro.symmetry import truncated_view, view_classes


def reconstruct_via_agent(graph, start, depth):
    """Physically reconstruct the view by walking (faithful mode)."""
    box = {}

    def algorithm(percept):
        result = yield from reconstruct_view(percept, depth)
        box["tree"] = result[1]
        return result[0]

    budget = view_reconstruction_budget(graph.n, depth)
    visited, final = run_single_agent(graph, start, algorithm, max_rounds=budget + 1)
    assert final == start, "reconstruction must end at home"
    assert len(visited) - 1 <= budget, "budget formula must dominate the walk"
    return box["tree"]


class TestOracleFaithfulEquivalence:
    @pytest.mark.parametrize(
        "graph,depth",
        [
            (two_node_graph(), 1),
            (oriented_ring(5), 2),
            (path_graph(4), 3),
            (star_graph(3), 2),
            (oriented_torus(3, 3), 2),
            (symmetric_tree(2, 1), 3),
        ],
        ids=["P2", "ring5", "path4", "star", "torus", "tree"],
    )
    def test_bit_identical_encodings(self, graph, depth):
        for start in range(min(graph.n, 4)):
            tree = reconstruct_via_agent(graph, start, depth)
            assert tree == truncated_view(graph, start, depth)
            assert encode_view_tree(tree) == encode_graph_view(graph, start, depth)

    def test_exhaustive_n3(self):
        for g in enumerate_port_labeled_graphs(3):
            for v in range(3):
                tree = truncated_view(g, v, 2)
                assert encode_view_tree(tree) == encode_graph_view(g, v, 2)


class TestInjectivity:
    def test_labels_separate_nonsymmetric_nodes(self):
        # Norris: depth n-1 distinguishes non-symmetric nodes.
        for g in (path_graph(4), star_graph(4), symmetric_tree(2, 1)):
            colors = view_classes(g)
            depth = g.n - 1
            encodings = [encode_graph_view(g, v, depth) for v in range(g.n)]
            for u in range(g.n):
                for v in range(u + 1, g.n):
                    same = encodings[u] == encodings[v]
                    assert same == (colors[u] == colors[v]), (u, v)

    def test_labels_equal_for_symmetric_nodes(self):
        g = oriented_torus(3, 3)
        depth = g.n - 1
        base = encode_graph_view(g, 0, depth)
        assert all(encode_graph_view(g, v, depth) == base for v in range(g.n))

    def test_encoding_is_polynomial_size(self):
        # Minimized-DAG encoding must not blow up exponentially.
        g = oriented_torus(3, 3)
        bits = encode_graph_view(g, 0, g.n - 1)
        assert len(bits) < max_label_bits(g.n, g.n - 1)


class TestPadding:
    def test_roundtrip(self):
        for bits in ((), (1,), (0, 1, 1, 0)):
            assert unpad_bits(pad_bits(bits, 16)) == bits

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            pad_bits((0,) * 16, 16)

    def test_malformed_unpad(self):
        with pytest.raises(ValueError):
            unpad_bits((0, 0, 0))

    def test_injective_at_fixed_width(self):
        padded = {pad_bits(b, 8) for b in ((0,), (1,), (0, 0), (1, 0), (0, 1))}
        assert len(padded) == 5


class TestHashBits:
    def test_deterministic(self):
        assert hash_bits((1, 0, 1), 16) == hash_bits((1, 0, 1), 16)

    def test_width(self):
        assert len(hash_bits((1, 1), 32)) == 32

    def test_separates_typical_labels(self):
        g = path_graph(4)
        a = hash_bits(encode_graph_view(g, 0, 3), 16)
        b = hash_bits(encode_graph_view(g, 3, 3), 16)
        assert a != b


class TestBudget:
    def test_budget_formula(self):
        assert view_reconstruction_budget(5, 0) == 0
        assert view_reconstruction_budget(2, 1) == 2
        assert view_reconstruction_budget(4, 2) == 4 * 9

    def test_budget_dominates_all_small_graphs(self):
        depth = 2
        for g in enumerate_port_labeled_graphs(3):
            budget = view_reconstruction_budget(3, depth)
            for v in range(3):
                tree = reconstruct_via_agent(g, v, depth)
                assert tree is not None  # walk fit in the budget
