"""Tests for the Theorem 4.1 machinery: Z, words, simulations, bound."""

import pytest

from repro.hardness import (
    STAY,
    build_qhat,
    build_qtree,
    dedicated_word,
    midpoint_dichotomy,
    simulate_word,
    simulate_word_symbolic,
    theoretical_bound,
    worst_case_meeting_time,
    z_paths,
    z_set,
)
from repro.hardness.qtree import E, N, S


class TestZSet:
    def test_size_and_depth(self):
        tree = build_qtree(4)
        members = z_set(tree, 2)
        assert len(members) == 4
        assert all(tree.depth[m.node] == 4 for m in members)

    def test_midpoints_distinct_at_depth_k(self):
        tree = build_qtree(4)
        members = z_set(tree, 2)
        mids = {m.midpoint for m in members}
        assert len(mids) == 4
        assert all(tree.depth[m.midpoint] == 2 for m in members)

    def test_gamma_defines_node(self):
        tree = build_qtree(4)
        for m in z_set(tree, 2):
            assert tree.follow(tree.root, m.path_from_root) == m.node

    def test_z_paths_lex(self):
        paths = z_paths(2)
        assert len(paths) == 4
        assert paths[0] == (N, N, N, N)
        assert paths[-1] == (E, E, E, E)

    def test_validation(self):
        with pytest.raises(ValueError):
            z_paths(0)
        with pytest.raises(ValueError):
            z_set(build_qtree(2), 2)  # h < 2k


class TestDedicatedWord:
    def test_block_structure(self):
        k = 2
        word = dedicated_word(k)
        assert len(word) == (2**k) * 8 * k // 2  # 2^k blocks of 4k letters
        # first block: NNNN then its reversal SSSS
        assert word[: 4 * k] == (N, N, N, N, S, S, S, S)

    def test_meets_all_z_members(self):
        k = 2
        word = dedicated_word(k)
        for path in z_paths(k):
            out = simulate_word_symbolic(
                4 * k, word, (), path, 2 * k, 10 * len(word)
            )
            assert out.met

    def test_meeting_time_formula(self):
        # Meeting for the m-th gamma happens at global round 4k*m + 2k.
        k = 2
        word = dedicated_word(k)
        for m, path in enumerate(z_paths(k)):
            out = simulate_word_symbolic(4 * k, word, (), path, 2 * k, 10**4)
            assert out.meeting_time == 4 * k * m + 2 * k


class TestSimulations:
    def test_concrete_matches_symbolic(self):
        k = 1
        graph, tree = build_qhat(4 * k)
        word = dedicated_word(k)
        for member in z_set(tree, k):
            concrete = simulate_word(
                graph, word, tree.root, member.node, 2 * k, 10**4
            )
            symbolic = simulate_word_symbolic(
                4 * k, word, (), member.path_from_root, 2 * k, 10**4
            )
            assert concrete.met == symbolic.met
            assert concrete.meeting_time == symbolic.meeting_time

    def test_stay_letters(self):
        out = simulate_word_symbolic(4, (STAY, STAY, N, S), (), (N, N), 2, 100)
        # agent A stays twice, then N (depth 1), S (back); B mirrors later
        assert out.visited_a[0] == () and out.visited_a[1] == ()

    def test_leaf_escape_detected(self):
        # A word that pushes beyond depth h must raise, not silently
        # wrap: the symbolic simulator only covers tree-confined runs.
        with pytest.raises(ValueError, match="leaf"):
            simulate_word_symbolic(2, (N, N, N), (), (N,), 0, 3)

    def test_identical_positions_meet_immediately(self):
        out = simulate_word_symbolic(4, (N,), (), (), 0, 10)
        assert out.met and out.meeting_time == 0


class TestBound:
    def test_formula(self):
        assert theoretical_bound(1) == 1
        assert theoretical_bound(5) == 16

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_measured_dominates_bound(self, k):
        assert worst_case_meeting_time(k) >= theoretical_bound(k)

    def test_exponential_growth(self):
        times = [worst_case_meeting_time(k) for k in (2, 3, 4, 5, 6)]
        ratios = [b / a for a, b in zip(times, times[1:])]
        # ~2x per k (the Theta(k 2^k) curve), comfortably >= 1.8
        assert all(r >= 1.8 for r in ratios), ratios


class TestDichotomy:
    def test_holds_on_all_small_runs(self):
        for k in (1, 2):
            graph, tree = build_qhat(4 * k)
            word = dedicated_word(k)
            for member in z_set(tree, k):
                out = simulate_word(
                    graph, word, tree.root, member.node, 2 * k, 10**5
                )
                a_mid, b_mid = midpoint_dichotomy(tree, member, out)
                assert a_mid or b_mid

    def test_requires_successful_run(self):
        tree = build_qtree(4)
        member = z_set(tree, 2)[0]
        graph, _ = build_qhat(4)
        failed = simulate_word(graph, (N, S), tree.root, member.node, 4, 6)
        assert not failed.met
        with pytest.raises(ValueError):
            midpoint_dichotomy(tree, member, failed)
