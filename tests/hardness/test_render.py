"""Tests for the Fig. 1 text rendering."""

from repro.hardness.qtree import build_qtree
from repro.hardness.render import render_fig1, render_qhat_extras, render_qtree


class TestRender:
    def test_qtree_mentions_all_nodes(self):
        tree = build_qtree(2)
        out = render_qtree(tree)
        for v in range(tree.n):
            assert f" {v}" in out

    def test_leaf_types_annotated(self):
        out = render_qtree(build_qtree(2))
        for t in ("N-type", "E-type", "S-type", "W-type"):
            assert t in out

    def test_elision_for_large_trees(self):
        out = render_qtree(build_qtree(5), max_nodes=20)
        assert "elided" in out

    def test_extras_structure(self):
        out = render_qhat_extras(2)
        assert "pairing edges" in out
        assert out.count("cycle") >= 4
        # x = 3 leaves per type at h=2 -> 6 pairing edges
        assert out.count("--S/N--") == 3
        assert out.count("--W/E--") == 3

    def test_fig1_combined(self):
        out = render_fig1(2)
        assert "Q_2" in out and "Q-hat_2" in out
