"""Tests for the Section 4 construction: Q_h and Q̂_h."""

import pytest

from repro.graphs.port_graph import PortLabeledGraph
from repro.hardness import (
    E,
    N,
    S,
    W,
    build_qhat,
    build_qtree,
    opposite,
    qhat_size,
)
from repro.symmetry import view_classes


class TestQTree:
    def test_counts(self):
        for h in (1, 2, 3):
            tree = build_qtree(h)
            assert tree.n == 1 + 4 * (3**h - 1) // 2
            leaves = sum(len(v) for v in tree.leaves_by_type.values())
            assert leaves == 4 * 3 ** (h - 1)
            for t in (N, E, S, W):
                assert len(tree.leaves_by_type[t]) == 3 ** (h - 1)

    def test_all_leaves_at_depth_h(self):
        tree = build_qtree(3)
        for v, t in tree.leaf_type.items():
            assert tree.depth[v] == 3
            # the leaf's single (letter) port is its parent port
            assert tree.parent[v][2] == t

    def test_edge_port_pairing(self):
        tree = build_qtree(2)
        for v in range(1, tree.n):
            _parent, port_at_parent, port_at_v = tree.parent[v]
            assert port_at_v == opposite(port_at_parent)

    def test_internal_nodes_have_all_four_ports(self):
        tree = build_qtree(3)
        for v in range(tree.n):
            if tree.is_leaf(v):
                continue
            ports = set(tree.children[v])
            if tree.parent[v] is not None:
                ports.add(tree.parent[v][2])
            assert ports == {N, E, S, W}

    def test_follow(self):
        tree = build_qtree(2)
        v = tree.follow(tree.root, (N, N))
        assert tree.depth[v] == 2
        assert tree.follow(v, (S, S)) == tree.root

    def test_follow_invalid_port_at_leaf(self):
        tree = build_qtree(1)
        leaf = tree.children[0][N]
        with pytest.raises(ValueError):
            tree.follow(leaf, (N,))  # only S (back up) exists at an N-child

    def test_validation(self):
        with pytest.raises(ValueError):
            build_qtree(0)

    def test_opposite(self):
        assert opposite(N) == S and opposite(S) == N
        assert opposite(E) == W and opposite(W) == E


class TestQHat:
    @pytest.mark.parametrize("h", [2, 3])
    def test_legal_regular_graph(self, h):
        graph, tree = build_qhat(h)
        assert isinstance(graph, PortLabeledGraph)
        assert graph.n == qhat_size(h) == tree.n
        assert graph.is_regular() and graph.max_degree == 4

    def test_edge_port_families(self):
        graph, _ = build_qhat(2)
        for _u, pu, _v, pv in graph.edges:
            assert pv == opposite(pu)
            assert {pu, pv} in ({N, S}, {E, W})

    @pytest.mark.parametrize("h", [2, 3])
    def test_all_views_identical(self, h):
        # The paper: "the view of each node of Q̂_h is identical, and
        # hence all pairs of nodes are symmetric."
        graph, _ = build_qhat(h)
        assert len(set(view_classes(graph))) == 1

    def test_tree_edges_preserved(self):
        graph, tree = build_qhat(2)
        # Walking N from the root must match the tree child.
        assert graph.succ(tree.root, N) == tree.children[tree.root][N]

    def test_pairing_edges(self):
        graph, tree = build_qhat(2)
        n1 = tree.leaves_by_type[N][0]
        s1 = tree.leaves_by_type[S][0]
        # Edge N_i - S_i with port S at N_i and port N at S_i.
        assert graph.succ(n1, S) == s1
        assert graph.succ(s1, N) == n1

    def test_h1_rejected(self):
        with pytest.raises(ValueError):
            build_qhat(1)
