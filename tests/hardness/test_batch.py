"""Batch oblivious simulation must agree with the scalar reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness import build_qhat, dedicated_word, simulate_word, z_set
from repro.hardness.batch import simulate_word_batch
from repro.hardness.qtree import E, N, S, W
from repro.graphs import oriented_torus


class TestAgainstScalar:
    def test_dedicated_word_on_qhat(self):
        k = 1
        graph, tree = build_qhat(4 * k)
        word = dedicated_word(k)
        members = z_set(tree, k)
        starts = [m.node for m in members]
        horizon = 10 * len(word)
        batch = simulate_word_batch(graph, word, tree.root, starts, 2 * k, horizon)
        scalar = [
            simulate_word(graph, word, tree.root, v, 2 * k, horizon).meeting_time
            for v in starts
        ]
        assert batch == scalar

    @given(
        word=st.lists(
            st.sampled_from([N, E, S, W, -1]), min_size=1, max_size=20
        ),
        delta=st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_words_on_torus(self, word, delta):
        g = oriented_torus(3, 3)
        word = tuple(word)
        starts = list(range(1, 9))
        horizon = 60
        batch = simulate_word_batch(g, word, 0, starts, delta, horizon)
        for v, got in zip(starts, batch):
            ref = simulate_word(g, word, 0, v, delta, horizon).meeting_time
            assert got == ref, (word, delta, v)

    def test_empty_batch(self):
        g = oriented_torus(3, 3)
        assert simulate_word_batch(g, (N,), 0, [], 0, 10) == []

    def test_never_meeting(self):
        g = oriented_torus(3, 3)
        # Pure STAY word and distinct starts: nobody ever meets.
        out = simulate_word_batch(g, (-1,), 0, [1, 2], 0, 30)
        assert out == [None, None]

    def test_starts_ndarray_not_mutated(self):
        """Regression: an int64 ndarray argument used to be aliased by
        ``np.asarray`` and silently overwritten by the in-place
        position updates."""
        g = oriented_torus(3, 3)
        starts = np.arange(1, 9, dtype=np.int64)
        before = starts.copy()
        simulate_word_batch(g, (N, E, S, W, N, E), 0, starts, 1, 40)
        assert np.array_equal(starts, before)
        # And the ndarray input yields the same answer as a list input.
        assert simulate_word_batch(
            g, (N, E, S, W, N, E), 0, starts, 1, 40
        ) == simulate_word_batch(g, (N, E, S, W, N, E), 0, list(before), 1, 40)
