"""Randomized end-to-end guarantees on generated instances.

Dedicated procedures must respect their bounds on *arbitrary*
instances, not just the curated families — these tests draw random
graphs and verify the Section 3 guarantees wholesale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dedicated import dedicated_rendezvous, plan_dedicated
from repro.core.profile import TUNED
from repro.core.uxs import is_uxs_for_graph
from repro.graphs import cayley_abelian, random_connected_graph, random_tree
from repro.symmetry import symmetric_pairs, view_classes
from repro.symmetry.shrink import shrink


@given(n=st.integers(3, 6), seed=st.integers(0, 10**5))
@settings(max_examples=12, deadline=None)
def test_asymm_dedicated_meets_on_random_trees(n, seed):
    g = random_tree(n, seed)
    if not is_uxs_for_graph(g, TUNED.uxs(g.n)):  # pragma: no cover
        pytest.skip("tuned UXS does not cover this instance")
    colors = view_classes(g)
    pair = next(
        (
            (u, v)
            for u in range(g.n)
            for v in range(u + 1, g.n)
            if colors[u] != colors[v]
        ),
        None,
    )
    if pair is None:  # pragma: no cover - trees almost always asymmetric
        pytest.skip("no non-symmetric pair")
    u, v = pair
    for delta in (0, 2):
        plan = plan_dedicated(g, u, v, delta)
        result = dedicated_rendezvous(g, u, v, delta)
        assert result.met and result.time_from_later <= plan.bound


@given(n=st.integers(4, 7), extra=st.integers(0, 4), seed=st.integers(0, 10**5))
@settings(max_examples=10, deadline=None)
def test_symmetric_pairs_of_random_graphs_meet_at_shrink(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    pairs = symmetric_pairs(g)
    if not pairs:
        return  # random graphs are usually rigid; nothing to check
    u, v = pairs[0]
    delta = shrink(g, u, v)
    plan = plan_dedicated(g, u, v, delta)
    result = dedicated_rendezvous(g, u, v, delta)
    assert result.met and result.time_from_later <= plan.bound


@given(
    m1=st.integers(3, 6),
    m2=st.sampled_from([None, 3, 4]),
    seed=st.integers(0, 100),
)
@settings(max_examples=10, deadline=None)
def test_cayley_family_dedicated_rendezvous(m1, m2, seed):
    moduli = (m1,) if m2 is None else (m1, m2)
    gens = [tuple(1 if i == j else 0 for i in range(len(moduli)))
            for j in range(len(moduli))]
    g = cayley_abelian(moduli, gens)
    v = 1 + seed % (g.n - 1)
    delta = shrink(g, 0, v)
    result = dedicated_rendezvous(g, 0, v, delta)
    assert result.met
