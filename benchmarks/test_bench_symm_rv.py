"""EXP-L32 — regenerate the SymmRV table (Lemmas 3.2/3.3) and measure
how the procedure's cost scales with the Shrink parameter ``d`` — the
``(n-1)^d`` exponential term of Lemma 3.3 that Section 4 proves is
unavoidable."""

import pytest
from conftest import emit

from repro.experiments import e_symm_rv
from repro.experiments.e_symm_rv import dedicated_symm_rv
from repro.graphs.families import oriented_ring


def test_symm_rv_table(benchmark, fast_mode):
    record = benchmark(e_symm_rv.run, fast_mode)
    emit(record)
    assert record.passed


@pytest.mark.parametrize("distance", [1, 2, 3])
def test_symm_rv_cost_vs_d(benchmark, distance):
    """Meeting time on a ring as d = Shrink grows: the measured time
    inherits the bound's exponential dependence on d."""
    g = oriented_ring(8)

    def run():
        result, d, bound = dedicated_symm_rv(g, 0, distance, 0)
        assert result.met and d == distance
        return result

    result = benchmark(run)
    assert result.met


def test_symm_rv_growth_table(fast_mode):
    """Print measured time and bound side by side for d = 1..4."""
    from repro.experiments.records import ExperimentRecord

    record = ExperimentRecord(
        exp_id="EXP-L32b",
        title="SymmRV meeting time vs d on the 8-ring",
        paper_claim="T(n, d, delta) grows with (n-1)^d (Lemma 3.3)",
        columns=["d", "met", "time", "T bound"],
    )
    d_max = 3 if fast_mode else 4
    prev = None
    monotone = True
    for distance in range(1, d_max + 1):
        result, d, bound = dedicated_symm_rv(oriented_ring(8), 0, distance, 0)
        record.add_row(d=d, met=result.met, time=result.time_from_later, **{"T bound": bound})
        if prev is not None and bound <= prev:
            monotone = False
        prev = bound
    record.passed = monotone
    record.measured_summary = "bound and measured time grow sharply with d"
    emit(record)
    assert record.passed
