"""Batched (pair x schedule) async sweep vs the scalar adversary loop.

The PR-2 acceptance benchmark: sweeping UniversalRV over every
symmetric pair of a ring against a battery of adversary schedules (the
``async_feasibility_atlas`` workload) must be at least 3x faster
through :func:`run_schedule_sweep` than through a scalar
:func:`run_schedule_adversary` loop, with bit-identical outcomes.  The
engine compiles each start node's traversal trace once and answers
every (partner, schedule) question against it, so the win grows with
the number of cells per start node.
"""

import time

from conftest import emit

from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.experiments.records import ExperimentRecord
from repro.graphs import oriented_ring
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.symmetry import symmetric_pairs


def _grid(graph):
    """A ≥200-cell symmetric-pair x schedule grid."""
    schedules = [
        MirrorSchedule(),
        EagerSchedule(),
        FixedDelaySchedule(2),
        RandomSchedule(0),
        RandomSchedule(1),
    ]
    pairs = symmetric_pairs(graph)
    return [(u, v, s) for u, v in pairs for s in schedules]


def _run_both(graph, max_events):
    cells = _grid(graph)
    algorithm = make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="bench-async")
    )

    t0 = time.perf_counter()
    batch = run_schedule_sweep(graph, cells, algorithm, max_events=max_events)
    batch_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = [
        run_schedule_adversary(graph, u, v, algorithm, s, max_events=max_events)
        for u, v, s in cells
    ]
    scalar_s = time.perf_counter() - t0

    for (u, v, s), got, ref in zip(cells, batch, scalar):
        assert got == ref, (u, v, s.name, got, ref)
    return len(cells), batch_s, scalar_s


def test_async_sweep_speedup():
    """>= 3x on a 225-cell ring grid, identical outcomes per cell."""
    record = ExperimentRecord(
        exp_id="BENCH-ASYNC",
        title="Batched schedule sweep vs scalar adversary loop (UniversalRV)",
        paper_claim=(
            "waits are collapsed asynchronously, so an agent's traversal "
            "sequence is schedule-independent: one compiled trace per "
            "start serves every adversary of the grid"
        ),
        columns=["graph", "cells", "scalar s", "batch s", "speedup"],
    )
    graph = oriented_ring(10)
    count, batch_s, scalar_s = _run_both(graph, max_events=1200)
    assert count >= 200, count
    speedup = scalar_s / batch_s
    record.add_row(
        graph="ring n=10",
        cells=count,
        **{
            "scalar s": round(scalar_s, 3),
            "batch s": round(batch_s, 3),
            "speedup": round(speedup, 1),
        },
    )
    record.passed = speedup >= 3.0
    record.measured_summary = (
        f"{count}-cell symmetric-pair x schedule grid ran {speedup:.1f}x "
        "faster batched, bit-identical outcomes on every cell"
    )
    emit(record)
    assert speedup >= 3.0, (scalar_s, batch_s)


def test_async_sweep_throughput(benchmark):
    """Raw engine throughput on the ring grid, for the timing table."""
    graph = oriented_ring(10)
    cells = _grid(graph)
    algorithm = make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="bench-async-tp")
    )

    def run():
        return run_schedule_sweep(graph, cells, algorithm, max_events=1200)

    results = benchmark(run)
    assert len(results) == len(cells)
    # Mirror cells never produce a node meeting from symmetric starts.
    assert not any(
        out.met for (u, v, s), out in zip(cells, results) if s.name == "mirror"
    )
