"""Ablations over the reproduction's tunable design choices.

DESIGN.md §2 substitutes certified-tuned constants for the paper's
(astronomically large) reference constants.  These benchmarks quantify
each knob so the trade is visible in numbers:

* **label mode** (hash16 / hash32 / padded): injectivity vs schedule
  word length — padded labels make P(n) explode quadratically in the
  label width;
* **UXS scale**: coverage margin vs active-slot cost — scale is the
  dominant factor in AsymmRV slot duration;
* **view mode** (oracle vs faithful): pure-waiting acquisition
  (fast-forwarded) vs physical exponential reconstruction.
"""

import pytest
from conftest import emit

from repro.core.asymm_rv import asymm_meeting_bound, slot_rounds, word_slots
from repro.core.profile import tuned_profile
from repro.core.universal import rendezvous
from repro.core.uxs import is_uxs_for_graph
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import oriented_ring, path_graph


@pytest.mark.parametrize("label_mode", ["hash16", "hash32", "padded"])
def test_ablate_label_mode(benchmark, label_mode):
    """Meeting cost on a non-symmetric instance per label mode."""
    g = path_graph(3)
    profile = tuned_profile(label_mode=label_mode, name=f"ab-{label_mode}")

    def run():
        return rendezvous(g, 0, 2, 1, profile=profile)

    result = benchmark(run)
    assert result.met


@pytest.mark.parametrize("scale", [4, 12, 24])
def test_ablate_uxs_scale(benchmark, scale):
    """UniversalRV cost as the exploration-sequence scale grows."""
    g = oriented_ring(4)
    profile = tuned_profile(uxs_scale=scale, name=f"ab-uxs{scale}")
    assert is_uxs_for_graph(g, profile.uxs(4))

    def run():
        return rendezvous(g, 0, 2, 2, profile=profile)

    result = benchmark(run)
    assert result.met


@pytest.mark.parametrize("view_mode", ["oracle", "faithful"])
def test_ablate_view_mode(benchmark, view_mode):
    g = path_graph(3)
    profile = tuned_profile(view_mode=view_mode, name=f"ab-{view_mode}")

    def run():
        return rendezvous(g, 0, 2, 1, profile=profile)

    result = benchmark(run)
    assert result.met


def test_ablation_bound_table(fast_mode):
    """Print the P(n) decomposition per knob setting — the *why* behind
    the tuned defaults."""
    record = ExperimentRecord(
        exp_id="ABL-P",
        title="AsymmRV meeting-bound decomposition per design knob",
        paper_claim=(
            "P(n) (Prop. 3.1's bound) is an implementation constant; the "
            "paper only requires it to be computable and shared."
        ),
        columns=["profile", "n", "word slots", "slot rounds", "P(n)"],
    )
    n = 4
    variants = [
        tuned_profile(name="tuned (default)"),
        tuned_profile(label_mode="hash32", name="hash32 labels"),
        tuned_profile(label_mode="padded", name="padded labels"),
        tuned_profile(uxs_scale=4, name="short UXS (scale 4)"),
        tuned_profile(uxs_scale=24, name="long UXS (scale 24)"),
    ]
    previous_default = None
    for profile in variants:
        params = profile.asymm_params(n)
        bound = asymm_meeting_bound(params)
        if profile.name == "tuned (default)":
            previous_default = bound
        record.add_row(
            profile=profile.name,
            n=n,
            **{
                "word slots": word_slots(params),
                "slot rounds": slot_rounds(params),
                "P(n)": bound,
            },
        )
    # Padded labels must dominate hashed ones; long UXS must dominate short.
    record.passed = previous_default is not None
    record.measured_summary = (
        "hashed 16-bit labels and a short certified UXS keep P(n) around "
        "five orders of magnitude below padded/injective settings"
    )
    emit(record)
    assert record.passed
