"""Symmetry kernel + vectorized UXS engine vs the retained scalar paths.

The PR-3 acceptance benchmarks:

* all-pairs Shrink and full-atlas STIC classification on the 7x7
  oriented torus must be >= 5x faster through ``SymmetryContext`` than
  through the scalar per-pair loop (``view_classes_reference`` +
  ``shrink_witness_reference``), bit-identical values;
* all-pairs Shrink on an n=40 random graph (no symmetry to skip, so
  the scalar loop runs one product-graph BFS per pair) >= 5x;
* UXS certification (:func:`is_uxs_for_graph`) of the reference
  ``Y(n)`` at n in {10, 16} must be >= 10x faster vectorized than the
  retained full-walk scalar certification.

Besides the pass/fail assertions, every comparison is appended to
``BENCH_symmetry.json`` (cwd) — ``{workload: {scalar_s, kernel_s,
speedup}}`` — so the perf trajectory stays machine-readable across
PRs; CI uploads the file next to the pytest-benchmark timings.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import emit

from repro.core.stic import enumerate_stics
from repro.core.uxs import apply_uxs, is_uxs_for_graph, uxs_for_size
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import oriented_torus
from repro.graphs.random_graphs import random_connected_graph
from repro.symmetry.context import SymmetryContext
from repro.symmetry.feasibility import classify_from_symmetry
from repro.symmetry.shrink import shrink_witness_reference
from repro.symmetry.views import view_classes_reference

_EXPORT = Path("BENCH_symmetry.json")


def record_speedup(workload: str, scalar_s: float, kernel_s: float) -> float:
    """Merge one old-vs-new timing into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    speedup = scalar_s / kernel_s if kernel_s > 0 else float("inf")
    data[workload] = {
        "scalar_s": round(scalar_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(speedup, 2),
    }
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return speedup


def scalar_symmetric_shrink(graph):
    """The pre-kernel path: scalar colors once, one BFS per symmetric
    pair (what ``shrink_matrix`` / ``enumerate_stics`` used to do)."""
    colors = view_classes_reference(graph)
    return colors, {
        (u, v): shrink_witness_reference(graph, u, v)[0]
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if colors[u] == colors[v]
    }


def test_all_pairs_shrink_and_atlas_torus():
    """7x7 torus (1176 symmetric pairs): >= 5x on all-pairs Shrink and
    on classifying the full STIC atlas, identical outputs."""
    graph = oriented_torus(7, 7)
    max_delta = 6

    t0 = time.perf_counter()
    colors, scalar_values = scalar_symmetric_shrink(graph)
    scalar_verdicts = {
        (u, v, delta): classify_from_symmetry(True, s, delta)
        for (u, v), s in scalar_values.items()
        for delta in range(max_delta + 1)
    }
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    context = SymmetryContext(graph)
    matrix = context.shrink_matrix()
    kernel_verdicts = {
        (stic.u, stic.v, stic.delta): verdict
        for stic, verdict in enumerate_stics(graph, max_delta)
    }
    kernel_s = time.perf_counter() - t0

    for (u, v), s in scalar_values.items():
        assert int(matrix[u, v]) == s
    assert kernel_verdicts == scalar_verdicts

    speedup = record_speedup("all_pairs_shrink_atlas_torus7x7", scalar_s, kernel_s)
    record = ExperimentRecord(
        exp_id="BENCH-SYMKERNEL",
        title="All-pairs Shrink + atlas classification: kernel vs scalar loop",
        paper_claim=(
            "one value iteration on the n^2-state product graph solves "
            "every pair's Shrink at once (Definition 3.1), so the "
            "Corollary 3.1 atlas needs no per-pair BFS"
        ),
        columns=["graph", "pairs", "scalar s", "kernel s", "speedup"],
    )
    record.add_row(
        graph="torus 7x7",
        pairs=len(scalar_values),
        **{
            "scalar s": round(scalar_s, 3),
            "kernel s": round(kernel_s, 3),
            "speedup": round(speedup, 1),
        },
    )
    record.passed = speedup >= 5.0
    record.measured_summary = (
        f"{len(scalar_values)} symmetric pairs classified {speedup:.0f}x "
        "faster through SymmetryContext, bit-identical Shrink and verdicts"
    )
    emit(record)
    assert speedup >= 5.0, (scalar_s, kernel_s)


def test_all_pairs_shrink_random_n40():
    """n=40 random graph: every-pair Shrink (the kernel's shrink_all)
    vs one scalar BFS per pair; >= 5x, identical values."""
    graph = random_connected_graph(40, 20, seed=5)

    t0 = time.perf_counter()
    scalar_values = {
        (u, v): shrink_witness_reference(graph, u, v)[0]
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
    }
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    matrix = SymmetryContext(graph).shrink_all
    kernel_s = time.perf_counter() - t0

    for (u, v), s in scalar_values.items():
        assert int(matrix[u, v]) == s

    speedup = record_speedup("all_pairs_shrink_random_n40", scalar_s, kernel_s)
    assert speedup >= 5.0, (scalar_s, kernel_s)


def _scalar_certification_seconds(graph, seq, starts):
    """Time the retained full-walk certification over ``starts``."""
    t0 = time.perf_counter()
    for start in starts:
        assert len(set(apply_uxs(graph, start, seq))) == graph.n
    return time.perf_counter() - t0


def test_uxs_certification_speedup_n10():
    """Reference Y(10) certification: vectorized >= 10x the retained
    scalar full-walk path, same verdict."""
    graph = random_connected_graph(10, 5, seed=3)
    seq = uxs_for_size(10)

    t0 = time.perf_counter()
    vectorized_ok = is_uxs_for_graph(graph, seq)
    kernel_s = time.perf_counter() - t0
    scalar_s = _scalar_certification_seconds(graph, seq, range(graph.n))
    assert vectorized_ok  # per-start coverage asserted inside the helper

    speedup = record_speedup("uxs_certification_n10", scalar_s, kernel_s)
    record = ExperimentRecord(
        exp_id="BENCH-UXSVEC",
        title="UXS certification: vectorized multi-start walk vs scalar",
        paper_claim=(
            "Y(n) has 48 n^3 ceil(log2(n+1)) terms; certifying coverage "
            "from every start is the O(n^4 log n) scalar bottleneck the "
            "dart-table walk collapses to one gather per term"
        ),
        columns=["n", "terms", "scalar s", "vectorized s", "speedup"],
    )
    record.add_row(
        n=10,
        terms=len(seq),
        **{
            "scalar s": round(scalar_s, 3),
            "vectorized s": round(kernel_s, 4),
            "speedup": round(speedup, 1),
        },
    )
    record.passed = speedup >= 10.0
    record.measured_summary = (
        f"Y(10) certified from all starts {speedup:.0f}x faster than the "
        "retained scalar full-walk certification"
    )
    emit(record)
    assert speedup >= 10.0, (scalar_s, kernel_s)


def test_uxs_certification_speedup_n16():
    """Y(16) certification at n=16.  In fast mode the scalar side walks
    3 of the 16 starts (a strict lower bound on the true speedup keeps
    the bench under control: the full scalar walk takes ~40 s); set
    REPRO_FULL=1 for the all-starts comparison."""
    graph = oriented_torus(4, 4)
    seq = uxs_for_size(16)
    full = os.environ.get("REPRO_FULL", "") == "1"
    starts = range(graph.n) if full else range(3)

    t0 = time.perf_counter()
    assert is_uxs_for_graph(graph, seq)
    kernel_s = time.perf_counter() - t0
    scalar_s = _scalar_certification_seconds(graph, seq, starts)

    label = "uxs_certification_n16" + ("" if full else "_lower_bound")
    speedup = record_speedup(label, scalar_s, kernel_s)
    assert speedup >= 10.0, (scalar_s, kernel_s)


def test_kernel_construction_torus(benchmark):
    """Raw kernel cost (colors + distances + all-pairs Shrink) on the
    7x7 torus, for the pytest-benchmark timing table."""

    def build():
        context = SymmetryContext(oriented_torus(7, 7))
        return context.shrink_all

    matrix = benchmark(build)
    assert int(matrix.max()) >= 1
    assert np.array_equal(matrix, matrix.T)
