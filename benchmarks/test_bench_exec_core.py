"""Unified execution core vs the frozen pre-refactor engines.

The refactor acceptance benchmark: on the two standing sweep grids —
the 448-STIC synchronous ring sweep and the 225-cell asynchronous
(pair x schedule) grid — the engines rewired over :mod:`repro.exec`
must be at least as fast as the pre-refactor solver/sweep layers
preserved verbatim in ``_legacy_engines.py``, with bit-identical
results on every cell.

Both sides share one pre-warmed :class:`TraceCompiler`, so compile
cost (unchanged by the refactor) is excluded and the timing isolates
exactly the replaced layer: meeting solvers + adaptive deepening.
Timings are best-of-N minima.  Consolidated ratios land in
``BENCH_exec_core.json`` (cwd) — ``{workload: {cells, legacy_s,
unified_s, ratio}}`` — uploaded by the CI benchmarks job; the bar is
``ratio >= 1.0`` on both grids.
"""

import json
import time
from pathlib import Path

import _legacy_engines as legacy
from conftest import emit

from repro.core import (
    TUNED,
    UniversalOracle,
    make_universal_algorithm,
    universal_stic_budget,
)
from repro.core.profile import tuned_profile
from repro.experiments.records import ExperimentRecord
from repro.graphs import oriented_ring
from repro.sim.batch import TraceCompiler, run_rendezvous_batch
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    run_schedule_sweep,
)
from repro.symmetry import classify_stic, symmetric_pairs

_EXPORT = Path("BENCH_exec_core.json")
_REPEATS = 7


def record_numbers(workload: str, payload: dict) -> None:
    """Merge one workload's numbers into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    data[workload] = payload
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _sync_grid():
    """The 448-STIC ring sweep of the PR-1 acceptance benchmark."""
    graph = oriented_ring(8)
    stics, budgets = [], {}
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            for delta in range(16):
                verdict = classify_stic(graph, u, v, delta)
                stics.append((u, v, delta))
                budgets[(u, v, delta)] = universal_stic_budget(
                    TUNED, graph.n, verdict, delta
                )
    return graph, stics, budgets


def _async_grid():
    """The 225-cell (symmetric pair x schedule) grid of the PR-2
    acceptance benchmark."""
    graph = oriented_ring(10)
    schedules = [
        MirrorSchedule(),
        EagerSchedule(),
        FixedDelaySchedule(2),
        RandomSchedule(0),
        RandomSchedule(1),
    ]
    cells = [(u, v, s) for u, v in symmetric_pairs(graph) for s in schedules]
    return graph, cells


def test_exec_core_vs_legacy_engines():
    record = ExperimentRecord(
        exp_id="BENCH-EXEC-CORE",
        title="Unified execution core vs frozen pre-refactor engines",
        paper_claim=(
            "one shared trace IR replayed as array gathers serves both "
            "sweep engines without giving back the batched speedups"
        ),
        columns=["workload", "cells", "legacy s", "unified s", "ratio"],
    )

    # -- synchronous: 448-STIC ring sweep ------------------------------
    graph, stics, budgets = _sync_grid()
    algorithm = make_universal_algorithm(TUNED)
    compiler = TraceCompiler(
        graph,
        algorithm,
        oracle_factory=lambda s: UniversalOracle(graph, s, TUNED),
    )
    max_rounds = lambda u, v, delta: budgets[(u, v, delta)]  # noqa: E731
    run_rendezvous_batch(
        graph, stics, algorithm, max_rounds=max_rounds, compiler=compiler
    )  # pre-warm: compile cost is shared and excluded

    unified_s, new = _best_of(
        lambda: run_rendezvous_batch(
            graph, stics, algorithm, max_rounds=max_rounds, compiler=compiler
        )
    )
    legacy_s, old = _best_of(
        lambda: legacy.legacy_run_rendezvous_batch(
            graph, stics, algorithm, max_rounds=max_rounds, compiler=compiler
        )
    )
    assert new == old  # bit-identical results, every field of every STIC
    sync_ratio = legacy_s / unified_s
    record.add_row(
        workload="sync ring n=8",
        cells=len(stics),
        **{
            "legacy s": round(legacy_s, 4),
            "unified s": round(unified_s, 4),
            "ratio": round(sync_ratio, 2),
        },
    )
    record_numbers(
        "sync_448_stics",
        {
            "cells": len(stics),
            "legacy_s": round(legacy_s, 4),
            "unified_s": round(unified_s, 4),
            "ratio": round(sync_ratio, 3),
        },
    )

    # -- asynchronous: 225-cell schedule grid --------------------------
    graph, cells = _async_grid()
    algorithm = make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="bench-exec-async")
    )
    compiler = TraceCompiler(graph, algorithm)
    run_schedule_sweep(
        graph, cells, algorithm, max_events=1200, compiler=compiler
    )  # pre-warm

    unified_s, new = _best_of(
        lambda: run_schedule_sweep(
            graph, cells, algorithm, max_events=1200, compiler=compiler
        )
    )
    legacy_s, old = _best_of(
        lambda: legacy.legacy_run_schedule_sweep(
            graph, cells, algorithm, max_events=1200, compiler=compiler
        )
    )
    assert new == old
    async_ratio = legacy_s / unified_s
    record.add_row(
        workload="async ring n=10",
        cells=len(cells),
        **{
            "legacy s": round(legacy_s, 4),
            "unified s": round(unified_s, 4),
            "ratio": round(async_ratio, 2),
        },
    )
    record_numbers(
        "async_225_cells",
        {
            "cells": len(cells),
            "legacy_s": round(legacy_s, 4),
            "unified_s": round(unified_s, 4),
            "ratio": round(async_ratio, 3),
        },
    )

    record.passed = sync_ratio >= 1.0 and async_ratio >= 1.0
    record.measured_summary = (
        f"unified core at {sync_ratio:.2f}x legacy on {len(stics)} sync "
        f"STICs and {async_ratio:.2f}x on {len(cells)} async cells, "
        "bit-identical outcomes on every cell of both grids"
    )
    emit(record)
    assert sync_ratio >= 1.0, (legacy_s, unified_s)
    assert async_ratio >= 1.0, (legacy_s, unified_s)


def test_exec_core_throughput(benchmark):
    """Raw unified-core throughput on the sync grid (timing table)."""
    graph, stics, budgets = _sync_grid()
    algorithm = make_universal_algorithm(TUNED)
    compiler = TraceCompiler(
        graph,
        algorithm,
        oracle_factory=lambda s: UniversalOracle(graph, s, TUNED),
    )

    def run():
        return run_rendezvous_batch(
            graph,
            stics,
            algorithm,
            max_rounds=lambda u, v, delta: budgets[(u, v, delta)],
            compiler=compiler,
        )

    results = benchmark(run)
    assert sum(r.met for r in results) == sum(
        1 for u, v, delta in stics if classify_stic(graph, u, v, delta).feasible
    )
