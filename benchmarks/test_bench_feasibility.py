"""EXP-L31 — regenerate the infeasibility table (Lemma 3.1) and time
the negative-evidence battery on one representative STIC."""

from conftest import emit

from repro.core.profile import TUNED
from repro.core.universal import rendezvous
from repro.experiments import e_infeasible
from repro.graphs.families import oriented_ring


def test_infeasibility_table(benchmark, fast_mode):
    record = benchmark(e_infeasible.run, fast_mode)
    emit(record)
    assert record.passed


def test_universal_on_infeasible_stic(benchmark):
    """Cost of running UniversalRV for 50k rounds with no meeting —
    exercises the scheduler's wait fast-forwarding."""
    g = oriented_ring(6)

    def run():
        return rendezvous(g, 0, 3, 0, profile=TUNED, max_rounds=50_000)

    result = benchmark(run)
    assert not result.met
