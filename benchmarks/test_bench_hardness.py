"""EXP-T41 — regenerate the exponential-lower-bound sweep and time the
symbolic Q_h simulations that make large heights reachable."""

import pytest
from conftest import emit

from repro.experiments import e_hardness
from repro.hardness.lower_bound import worst_case_meeting_time
from repro.hardness.qhat import build_qhat


def test_hardness_table(benchmark, fast_mode):
    record = benchmark(e_hardness.run, fast_mode)
    emit(record)
    assert record.passed


@pytest.mark.parametrize("k", [3, 5, 7])
def test_worst_case_sweep(benchmark, k):
    """Symbolic sweep cost at height h = 4k (node count ~3^{4k} would
    be unbuildable beyond k = 3; the symbolic simulator does not care)."""
    worst = benchmark(worst_case_meeting_time, k)
    assert worst >= 2 ** (k - 1)


def test_concrete_qhat_k2(benchmark):
    """Concrete 13121-node Q̂_8 build (the k=2 cross-check substrate)."""
    graph, _ = benchmark(build_qhat, 8)
    assert graph.n == 13121


def test_batch_vs_scalar_qhat_k2(benchmark):
    """Vectorized batch sweep over Z on the 13121-node Q̂_8."""
    from repro.hardness import dedicated_word, z_set
    from repro.hardness.batch import simulate_word_batch

    graph, tree = build_qhat(8)
    word = dedicated_word(2)
    starts = [m.node for m in z_set(tree, 2)]

    def run():
        return simulate_word_batch(graph, word, tree.root, starts, 4, 10 * len(word))

    times = benchmark(run)
    assert all(t is not None for t in times)
