"""EXP-BASE / EXP-LE — regenerate the baseline comparison table and
time each baseline on a common workload."""

from conftest import emit

from repro.baselines.random_walk import mean_meeting_time
from repro.baselines.wait_for_mommy import wait_for_mommy
from repro.core.profile import TUNED
from repro.core.universal import rendezvous
from repro.experiments import e_baselines
from repro.graphs.families import oriented_torus, torus_node


def test_baselines_table(benchmark, fast_mode):
    record = benchmark(e_baselines.run, fast_mode)
    emit(record)
    assert record.passed


def _torus_case():
    g = oriented_torus(3, 3)
    return g, 0, torus_node(1, 1, 3), 2


def test_random_walk_baseline(benchmark):
    g, u, v, delta = _torus_case()

    def run():
        return mean_meeting_time(g, u, v, delta, trials=20, seed=11)

    mean, failures = benchmark(run)
    assert failures == 0


def test_mommy_baseline(benchmark):
    g, u, v, delta = _torus_case()

    def run():
        return wait_for_mommy(g, u, v, delta, TUNED.uxs(g.n))

    out = benchmark(run)
    assert out.met


def test_universal_on_same_case(benchmark):
    g, u, v, delta = _torus_case()

    def run():
        return rendezvous(g, u, v, delta, profile=TUNED)

    result = benchmark(run)
    assert result.met
