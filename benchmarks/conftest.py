"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see
DESIGN.md §3) and prints the regenerated table after timing, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full
evaluation in one command.
"""

import pytest


def emit(record) -> None:
    """Print an experiment record beneath the benchmark output."""
    print()
    print(record.to_text())


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    """Benchmarks default to the fast sweeps; set REPRO_FULL=1 for the
    full (slow) parameter ranges."""
    import os

    return os.environ.get("REPRO_FULL", "") != "1"
