"""FIG1 — regenerate Figure 1's construction (Q_h / Q̂_h) and time it.

Also microbenchmarks the two expensive structural checks the
reproduction relies on: building Q̂_h and refining its view classes.
"""

from conftest import emit

from repro.experiments import e_fig1
from repro.hardness.qhat import build_qhat
from repro.symmetry.views import view_classes


def test_fig1_regeneration(benchmark, fast_mode):
    record = benchmark(e_fig1.run, fast_mode)
    emit(record)
    assert record.passed


def test_build_qhat_h3(benchmark):
    graph, _tree = benchmark(build_qhat, 3)
    assert graph.n == 53


def test_build_qhat_h5(benchmark):
    graph, _tree = benchmark(build_qhat, 5)
    assert graph.n == 485


def test_view_refinement_qhat_h4(benchmark):
    graph, _ = build_qhat(4)
    colors = benchmark(view_classes, graph)
    assert len(set(colors)) == 1
