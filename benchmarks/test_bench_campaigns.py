"""Campaign-layer benchmarks: cell throughput and warm-cache hit rate.

The campaign acceptance numbers:

* a cold smoke-tier ``core`` campaign must sustain a measurable
  cells/sec rate (recorded, not gated — machines differ);
* the warm re-run must be a **pure cache hit** (zero recomputed
  cells, hit rate 1.0) and complete >= 5x faster than the cold run;
* serial and ``--jobs 2`` runs must merge to identical records.

Consolidated numbers land in ``BENCH_campaigns.json`` (cwd) —
``{workload: {cold_s, warm_s, cells, cells_per_s, warm_hit_rate,
...}}`` — uploaded by the CI benchmarks job next to the
pytest-benchmark timings.
"""

import json
import time
from pathlib import Path

from repro.campaigns.registry import CAMPAIGNS
from repro.experiments.orchestrator import run_experiment
from repro.experiments.store import ResultStore

_EXPORT = Path("BENCH_campaigns.json")


def record_numbers(workload: str, payload: dict) -> None:
    """Merge one workload's numbers into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    data[workload] = payload
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_campaign_throughput_and_warm_cache(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = CAMPAIGNS["core"]

    t0 = time.perf_counter()
    cold = run_experiment(spec, tier="smoke", jobs=1, store=store)
    cold_s = time.perf_counter() - t0
    cells = len(cold.shards)
    assert cold.record.passed, cold.record.measured_summary
    assert cold.shards_cached == 0

    t0 = time.perf_counter()
    warm = run_experiment(spec, tier="smoke", jobs=1, store=store)
    warm_s = time.perf_counter() - t0
    assert warm.shards_computed == 0  # pure cache hit
    assert warm.record == cold.record
    warm_hit_rate = warm.shards_cached / cells
    assert warm_hit_rate == 1.0
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert warm_speedup >= 5.0, (cold_s, warm_s)

    parallel = run_experiment(spec, tier="smoke", jobs=2, store=None)
    assert parallel.record == cold.record  # bit-identical merge

    comparisons = sum(
        outcome.result["comparisons"] for outcome in cold.shards
    )
    record_numbers(
        "core_smoke",
        {
            "cells": cells,
            "comparisons": comparisons,
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "cells_per_s": round(cells / cold_s, 2),
            "warm_hit_rate": warm_hit_rate,
            "warm_speedup": round(warm_speedup, 2),
        },
    )
    print(
        f"\ncampaign core/smoke: {cells} cells, {comparisons} comparisons, "
        f"cold {cold_s:.2f}s ({cells / cold_s:.1f} cells/s), warm "
        f"{warm_s:.3f}s (hit rate {warm_hit_rate:.0%}, {warm_speedup:.0f}x)"
    )
