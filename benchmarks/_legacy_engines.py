"""Frozen pre-refactor engines: the replaced solver/sweep layers, verbatim.

When the three engines were rewired over ``repro.exec`` (see
docs/execution_core.md), their original solve/replay layers were
preserved here, byte-for-byte in behavior, as the *old* side of the
old-vs-new contract:

* ``tests/exec`` fuzzes random instances through both paths and
  asserts bit-identity of every output field;
* ``benchmarks/test_bench_exec_core.py`` times both on the standing
  benchmark grids (448 STICs, 225 schedule cells) and exports the
  throughput ratio to ``BENCH_exec_core.json`` (regression bar: the
  unified core must be >= 1.0x).

The trace compiler itself moved unchanged, so these functions consume
the same :class:`~repro.sim.batch.TraceCompiler` traces the unified
core does — the comparison isolates exactly the layer the refactor
replaced.  Do not "fix" or modernize this module: its value is that it
is the code that shipped before the refactor.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, NoReturn

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.batch import PortTrace, TraceCompiler, _BadPortChoice
from repro.sim.schedule_adversary import ActivationSchedule, AsyncOutcome
from repro.sim.scheduler import RendezvousResult, SimulationLimit

_PENDING = object()


def _raise_for_stic(exc: Exception, start_round: int) -> NoReturn:
    if isinstance(exc, _BadPortChoice):
        raise ValueError(
            f"agent chose port {exc.port} at a node of degree {exc.degree} "
            f"(round {exc.clock + start_round})"
        )
    raise exc


def legacy_solve_meeting(
    trace_a: PortTrace, trace_b: PortTrace, delta: int, limit: int
) -> tuple[int, int] | None:
    """The pre-refactor synchronous meeting solver (np.union1d merge)."""
    if delta > limit:
        return None
    ta = trace_a.times
    tb = trace_b.times + delta
    cut_a = int(np.searchsorted(ta, limit, side="right"))
    cut_b = int(np.searchsorted(tb, limit, side="right"))
    bp = np.union1d(ta[:cut_a], tb[:cut_b])
    bp = bp[bp >= delta]
    if bp.size == 0 or bp[0] != delta:
        bp = np.concatenate(([delta], bp))
    pos_a = trace_a.nodes[np.searchsorted(ta, bp, side="right") - 1]
    pos_b = trace_b.nodes[
        np.searchsorted(trace_b.times, bp - delta, side="right") - 1
    ]
    eq = pos_a == pos_b
    if not eq.any():
        return None
    k = int(np.argmax(eq))
    return int(bp[k]), int(pos_a[k])


def _try_solve(
    u: int,
    v: int,
    delta: int,
    max_rounds: int,
    trace_u: PortTrace,
    trace_v: PortTrace,
    raise_on_limit: bool,
) -> Any:
    limit = min(max_rounds, trace_u.limit, delta + trace_v.limit)
    hit = legacy_solve_meeting(trace_u, trace_v, delta, int(limit))
    if hit is not None:
        t, node = hit
        return RendezvousResult(
            met=True,
            meeting_node=node,
            meeting_time=t,
            time_from_later=t - delta,
            rounds_executed=t,
            crossings=(),
            traces=None,
        )
    if limit >= max_rounds:
        if raise_on_limit:
            raise SimulationLimit(f"no rendezvous within {max_rounds} rounds")
        return RendezvousResult(
            met=False,
            meeting_node=None,
            meeting_time=None,
            time_from_later=None,
            rounds_executed=max_rounds,
            crossings=(),
            traces=None,
        )
    err_u = trace_u.limit if trace_u.error is not None else math.inf
    err_v = delta + trace_v.limit if trace_v.error is not None else math.inf
    nearest = min(err_u, err_v)
    if nearest <= limit and nearest < max_rounds:
        if err_u <= err_v:
            _raise_for_stic(trace_u.error, 0)
        _raise_for_stic(trace_v.error, delta)
    return _PENDING


def legacy_run_rendezvous_batch(
    graph: PortLabeledGraph,
    stics: Iterable,
    algorithm: Callable,
    *,
    max_rounds: int | Callable[[int, int, int], int],
    oracle_factory: Callable[[int], object] | None = None,
    raise_on_limit: bool = False,
    compiler: TraceCompiler | None = None,
    initial_horizon: int = 1024,
) -> list[RendezvousResult]:
    """The pre-refactor batched STIC sweep, loop and all."""
    items: list[tuple[int, int, int]] = []
    for s in stics:
        if isinstance(s, tuple):
            u, v, delta = s
        else:
            u, v, delta = s.u, s.v, s.delta
        if delta < 0:
            raise ValueError(f"delay must be non-negative, got {delta}")
        items.append((int(u), int(v), int(delta)))
    budgets: list[int] = []
    for u, v, delta in items:
        m = max_rounds(u, v, delta) if callable(max_rounds) else max_rounds
        if m < 0:
            raise ValueError("max_rounds must be non-negative")
        budgets.append(int(m))
    if compiler is None:
        compiler = TraceCompiler(graph, algorithm, oracle_factory=oracle_factory)

    need: dict[int, int] = {}
    for (u, v, delta), m in zip(items, budgets):
        need[u] = max(need.get(u, 0), m)
        if m - delta >= 0:
            need[v] = max(need.get(v, 0), m - delta)

    results: list[RendezvousResult | None] = [None] * len(items)
    pending = list(range(len(items)))
    cap = max(need.values(), default=0)
    horizon = min(cap, max(initial_horizon, 1))
    while pending:
        starts = set()
        for i in pending:
            u, v, delta = items[i]
            starts.update((u, v))
        traces = compiler.traces(
            {s: min(horizon, need[s]) for s in starts if s in need}
        )
        still: list[int] = []
        for i in pending:
            u, v, delta = items[i]
            if delta > budgets[i]:
                tu = traces[u]
                if tu.error is not None and tu.limit < budgets[i]:
                    _raise_for_stic(tu.error, 0)
                if not tu.complete and tu.valid_through < budgets[i]:
                    still.append(i)
                    continue
                if raise_on_limit:
                    raise SimulationLimit(
                        f"no rendezvous within {budgets[i]} rounds"
                    )
                results[i] = RendezvousResult(
                    met=False,
                    meeting_node=None,
                    meeting_time=None,
                    time_from_later=None,
                    rounds_executed=budgets[i],
                    crossings=(),
                    traces=None,
                )
                continue
            outcome = _try_solve(
                u, v, delta, budgets[i], traces[u], traces[v], raise_on_limit
            )
            if outcome is _PENDING:
                still.append(i)
            else:
                results[i] = outcome
        pending = still
        if pending:
            if horizon >= cap:
                raise AssertionError("batch horizon exhausted with STICs pending")
            horizon = min(cap, horizon * 4)
    return results  # type: ignore[return-value]


def _raise_for_async(exc: Exception, node: int) -> NoReturn:
    if isinstance(exc, _BadPortChoice):
        raise ValueError(f"invalid port {exc.port} at node {node}")
    raise exc


def _first_error_event(cum: np.ndarray, agent: int, trace: PortTrace) -> float:
    if trace.error is None:
        return math.inf
    pulls = np.flatnonzero(
        (cum[1:, agent] > cum[:-1, agent]) & (cum[:-1, agent] == trace.moves)
    )
    return int(pulls[0]) if pulls.size else math.inf


def legacy_try_solve_cell(
    cum: np.ndarray,
    budget: int,
    trace_u: PortTrace,
    trace_v: PortTrace,
) -> Any:
    """The pre-refactor asynchronous cell resolver."""
    cap_a = budget + 1 if trace_u.complete else trace_u.moves
    cap_b = budget + 1 if trace_v.complete else trace_v.moves
    exceed = (cum[:, 0] > cap_a) | (cum[:, 1] > cap_b)
    e_valid = int(np.argmax(exceed)) - 1 if bool(exceed.any()) else budget
    ca = np.minimum(cum[: e_valid + 1, 0], trace_u.moves)
    cb = np.minimum(cum[: e_valid + 1, 1], trace_v.moves)
    pos_a = trace_u.nodes[ca]
    pos_b = trace_v.nodes[cb]
    eq = pos_a == pos_b
    met = bool(eq.any())
    k = int(np.argmax(eq)) if met else None

    candidates = []
    for agent, trace in ((0, trace_u), (1, trace_v)):
        event = _first_error_event(cum, agent, trace)
        if not math.isinf(event):
            kind = 1 if isinstance(trace.error, _BadPortChoice) else 0
            candidates.append((event, kind, agent, trace))
    nearest = min(candidates, key=lambda c: c[:3]) if candidates else None

    def crossings_before(stop: int) -> int:
        moved_a = ca[1:] > ca[:-1]
        moved_b = cb[1:] > cb[:-1]
        swap = (
            (pos_a[1:] == pos_b[:-1])
            & (pos_b[1:] == pos_a[:-1])
            & (pos_a[:-1] != pos_b[:-1])
        )
        return int((moved_a & moved_b & swap)[:stop].sum())

    if met and (nearest is None or k <= nearest[0]):
        return AsyncOutcome(True, int(pos_a[k]), k, crossings_before(k))
    if nearest is not None and nearest[0] <= e_valid:
        _raise_for_async(nearest[3].error, int(nearest[3].nodes[-1]))
    if not met and e_valid >= budget:
        return AsyncOutcome(False, None, budget, crossings_before(budget))
    return _PENDING


def legacy_run_schedule_sweep(
    graph: PortLabeledGraph,
    cells: Iterable,
    algorithm: Callable,
    *,
    max_events: int | Callable[[int, int, ActivationSchedule], int],
    compiler: TraceCompiler | None = None,
    fuel: int = 1 << 16,
    initial_horizon: int = 1024,
) -> list[AsyncOutcome]:
    """The pre-refactor batched (pair x schedule) sweep, loop and all."""
    items: list[tuple[int, int, ActivationSchedule]] = []
    for cell in cells:
        if isinstance(cell, tuple):
            u, v, schedule = cell
        else:
            u, v, schedule = cell.u, cell.v, cell.schedule
        if not isinstance(schedule, ActivationSchedule):
            raise TypeError(f"expected an ActivationSchedule, got {schedule!r}")
        items.append((int(u), int(v), schedule))
    budgets: list[int] = []
    for u, v, schedule in items:
        m = max_events(u, v, schedule) if callable(max_events) else max_events
        if m < 0:
            raise ValueError("max_events must be non-negative")
        budgets.append(int(m))
    if compiler is None:
        compiler = TraceCompiler(graph, algorithm)

    cums: dict[tuple[int, int], np.ndarray] = {}
    for (u, v, schedule), budget in zip(items, budgets):
        key = (id(schedule), budget)
        if key not in cums:
            cums[key] = schedule.cumulative_moves(budget)

    results: list[AsyncOutcome | None] = [None] * len(items)
    pending = list(range(len(items)))
    traces: dict[int, PortTrace] = {}
    horizon = max(initial_horizon, 1)
    while pending:
        need_moves: dict[int, int] = {}
        for i in pending:
            u, v, schedule = items[i]
            cum = cums[(id(schedule), budgets[i])]
            need_moves[u] = max(need_moves.get(u, 0), int(cum[budgets[i], 0]))
            need_moves[v] = max(need_moves.get(v, 0), int(cum[budgets[i], 1]))
        growing = {
            s
            for s, n in need_moves.items()
            if s not in traces
            or not (
                traces[s].complete
                or traces[s].error is not None
                or traces[s].moves >= n
            )
        }
        if growing:
            traces.update(compiler.traces({s: horizon for s in growing}))
            for s in growing:
                trace = traces[s]
                if (
                    not trace.complete
                    and trace.error is None
                    and trace.moves < need_moves[s]
                    and trace.tail_waits >= fuel
                ):
                    raise RuntimeError(
                        "agent produced no move within the fuel limit"
                    )
        still: list[int] = []
        for i in pending:
            u, v, schedule = items[i]
            outcome = legacy_try_solve_cell(
                cums[(id(schedule), budgets[i])], budgets[i], traces[u], traces[v]
            )
            if outcome is _PENDING:
                still.append(i)
            else:
                results[i] = outcome
        pending = still
        horizon *= 4
    return results  # type: ignore[return-value]


class LegacyDartWalkTable:
    """The pre-refactor UXS transition tables (direct numpy, no backend)."""

    __slots__ = (
        "graph",
        "bound",
        "transitions",
        "max_degree",
        "port_step",
        "dart_entry",
        "dart_degree",
    )

    def __init__(self, graph: PortLabeledGraph, bound: int) -> None:
        n = graph.n
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        md = succ.shape[1]
        degrees = graph.degrees

        node_of = np.repeat(np.arange(n), md)
        port_of = np.tile(np.arange(md), n)
        deg_of = degrees[node_of]
        valid = port_of < deg_of
        safe_deg = np.maximum(deg_of, 1)
        offsets = np.arange(bound, dtype=np.int64)[:, None]
        ports = (port_of[None, :] + offsets) % safe_deg[None, :]
        flat_succ = succ.reshape(-1)
        flat_entry = entry.reshape(-1)
        source = node_of[None, :] * md + ports
        table = flat_succ[source] * md + flat_entry[source]
        table[:, ~valid] = 0
        self.graph = graph
        self.bound = bound
        self.max_degree = md
        self.transitions = np.ascontiguousarray(table)
        self.port_step = np.where(
            flat_succ >= 0, flat_succ * md + flat_entry, 0
        )
        self.dart_entry = port_of
        self.dart_degree = safe_deg

    def start_darts(self) -> np.ndarray:
        graph = self.graph
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        return succ[:, 0] * self.max_degree + entry[:, 0]

    def step_direct(
        self, darts: np.ndarray, offset: int, out: np.ndarray
    ) -> None:
        entry = self.dart_entry[darts]
        ports = (entry + offset) % self.dart_degree[darts]
        np.take(self.port_step, darts - entry + ports, out=out)


def legacy_apply_uxs_all(graph: PortLabeledGraph, seq) -> np.ndarray:
    """The pre-refactor all-starts UXS walk."""
    n = graph.n
    if n == 1:
        return np.zeros((1, 1), dtype=np.int64)
    offsets = np.asarray(seq, dtype=np.int64)
    if offsets.ndim != 1:
        raise ValueError("UXS must be a flat sequence of offsets")
    if len(offsets) and int(offsets.min()) < 0:
        raise ValueError("UXS offsets must be non-negative")
    table = LegacyDartWalkTable(graph, max(2 * n, 2))
    md = table.max_degree
    steps = len(offsets)
    darts = np.empty((steps + 1, n), dtype=np.int64)
    darts[0] = table.start_darts()
    transitions = table.transitions
    in_table = offsets < table.bound
    for k in range(steps):
        if in_table[k]:
            np.take(transitions[offsets[k]], darts[k], out=darts[k + 1])
        else:
            table.step_direct(darts[k], int(offsets[k]), darts[k + 1])
    nodes = np.empty((n, steps + 2), dtype=np.int64)
    nodes[:, 0] = np.arange(n)
    nodes[:, 1:] = (darts // md).T
    return nodes


def legacy_covered_counts(
    graph: PortLabeledGraph,
    seq,
    *,
    chunk: int = 512,
    stop_when_all_covered: bool = True,
) -> np.ndarray:
    """The pre-refactor multi-start coverage walk."""
    n = graph.n
    if n == 1:
        return np.ones(1, dtype=np.int64)
    table = LegacyDartWalkTable(graph, max(2 * n, 2))
    md = table.max_degree
    transitions = table.transitions

    visited = np.zeros((n, n), dtype=bool)
    lanes = np.arange(n)
    visited[lanes, lanes] = True

    darts = table.start_darts()
    visited[lanes, darts // md] = True
    if stop_when_all_covered and visited.all():
        return visited.sum(axis=1)

    buffer = np.empty((chunk, n), dtype=np.int64)
    lane_base = lanes * n
    visited_flat = visited.reshape(-1)
    position = 0
    total = len(seq)
    while position < total:
        size = min(chunk, total - position)
        offsets = np.asarray(seq[position : position + size], dtype=np.int64)
        if len(offsets) and int(offsets.min()) < 0:
            raise ValueError("UXS offsets must be non-negative")
        previous = darts
        if int(offsets.max()) < table.bound:
            for k in range(size):
                np.take(transitions[offsets[k]], previous, out=buffer[k])
                previous = buffer[k]
        else:
            in_table = offsets < table.bound
            for k in range(size):
                if in_table[k]:
                    np.take(transitions[offsets[k]], previous, out=buffer[k])
                else:
                    table.step_direct(previous, int(offsets[k]), buffer[k])
                previous = buffer[k]
        darts = buffer[size - 1].copy()
        position += size
        visited_flat[
            (buffer[:size] // md + lane_base[None, :]).reshape(-1)
        ] = True
        if stop_when_all_covered and visited_flat.all():
            break
    return visited.sum(axis=1)
