"""EXP-T31 / EXP-P41 — regenerate the UniversalRV table and time the
universal algorithm on each STIC class."""

import pytest
from conftest import emit

from repro.core.profile import TUNED
from repro.core.universal import rendezvous
from repro.experiments import e_universal
from repro.graphs.families import oriented_ring, path_graph, two_node_graph


def test_universal_table(benchmark, fast_mode):
    record = benchmark(e_universal.run, fast_mode)
    emit(record)
    assert record.passed


@pytest.mark.parametrize(
    "name,factory,u,v,delta",
    [
        ("symmetric-boundary", lambda: two_node_graph(), 0, 1, 1),
        ("symmetric-slack", lambda: oriented_ring(4), 0, 2, 3),
        ("nonsymmetric-zero-delay", lambda: path_graph(3), 0, 2, 0),
        ("nonsymmetric-delay", lambda: path_graph(4), 0, 3, 2),
    ],
    ids=["sym-boundary", "sym-slack", "nonsym-d0", "nonsym-d2"],
)
def test_universal_per_class(benchmark, name, factory, u, v, delta):
    g = factory()

    def run():
        return rendezvous(g, u, v, delta, profile=TUNED)

    result = benchmark(run)
    assert result.met


def test_dedicated_vs_universal_price(benchmark):
    """The price of universality: dedicated SymmRV on the same STIC."""
    from repro.core.dedicated import dedicated_rendezvous

    g = oriented_ring(4)

    def run():
        return dedicated_rendezvous(g, 0, 2, 2)

    result = benchmark(run)
    assert result.met


def test_scheduler_throughput(benchmark):
    """Raw scheduler throughput: two always-moving agents, 20k rounds."""
    from repro.sim import Move, run_rendezvous
    from repro.graphs.families import oriented_torus

    g = oriented_torus(3, 3)

    def mover(percept):
        while True:
            percept = yield Move(percept.clock % percept.degree)

    def run():
        return run_rendezvous(g, 0, 4, 1, mover, max_rounds=20_000)

    result = benchmark(run)
    assert result.rounds_executed <= 20_000
