"""TAB-SHRINK — regenerate the Section 3 Shrink examples and time the
product-graph BFS on growing instances."""

from conftest import emit

from repro.experiments import e_shrink
from repro.graphs.families import (
    mirror_node,
    oriented_torus,
    symmetric_tree,
    torus_node,
)
from repro.symmetry.shrink import shrink


def test_shrink_table(benchmark, fast_mode):
    record = benchmark(e_shrink.run, fast_mode)
    emit(record)
    assert record.passed


def test_shrink_torus_5x5(benchmark):
    g = oriented_torus(5, 5)
    value = benchmark(shrink, g, 0, torus_node(2, 2, 5))
    assert value == 4


def test_shrink_torus_7x7(benchmark):
    g = oriented_torus(7, 7)
    value = benchmark(shrink, g, 0, torus_node(3, 3, 7))
    assert value == 6


def test_shrink_mirror_tree_depth4(benchmark):
    g = symmetric_tree(2, 4)
    leaf = g.n // 2 - 1
    value = benchmark(shrink, g, leaf, mirror_node(leaf, 2, 4))
    assert value == 1
