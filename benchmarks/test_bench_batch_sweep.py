"""Batched STIC sweep engine vs the scalar per-STIC loop.

The PR-1 acceptance benchmark: sweeping Algorithm UniversalRV over
every STIC of a family (the ``empirical_feasibility_atlas`` workload)
must be at least 5x faster through :func:`run_rendezvous_batch` than
through a scalar :func:`run_rendezvous` loop, with bit-identical
results.  The engine compiles each start node's port trace once and
answers every ``(partner, delta)`` question against it, so the win
grows with the number of STICs per start node.
"""

import time

from conftest import emit

from repro.core import (
    TUNED,
    UniversalOracle,
    make_universal_algorithm,
    universal_stic_budget,
)
from repro.experiments.records import ExperimentRecord
from repro.graphs import oriented_ring, oriented_torus
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import run_rendezvous
from repro.symmetry import classify_stic


def _sweep_inputs(graph, max_delta):
    """All STICs up to ``max_delta`` with their round budgets
    (precomputed: budget formulas are shared by both competitors and
    are not what this benchmark measures)."""
    stics, budgets = [], {}
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            for delta in range(max_delta + 1):
                verdict = classify_stic(graph, u, v, delta)
                stics.append((u, v, delta))
                budgets[(u, v, delta)] = universal_stic_budget(
                    TUNED, graph.n, verdict, delta
                )
    return stics, budgets


def _run_both(graph, max_delta):
    stics, budgets = _sweep_inputs(graph, max_delta)
    algorithm = make_universal_algorithm(TUNED)

    t0 = time.perf_counter()
    batch = run_rendezvous_batch(
        graph,
        stics,
        algorithm,
        max_rounds=lambda u, v, delta: budgets[(u, v, delta)],
        oracle_factory=lambda s: UniversalOracle(graph, s, TUNED),
    )
    batch_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = [
        run_rendezvous(
            graph,
            u,
            v,
            delta,
            algorithm,
            max_rounds=budgets[(u, v, delta)],
            oracles=(
                UniversalOracle(graph, u, TUNED),
                UniversalOracle(graph, v, TUNED),
            ),
        )
        for u, v, delta in stics
    ]
    scalar_s = time.perf_counter() - t0

    for (u, v, delta), got, ref in zip(stics, batch, scalar):
        assert (
            got.met,
            got.meeting_node,
            got.meeting_time,
            got.time_from_later,
            got.rounds_executed,
        ) == (
            ref.met,
            ref.meeting_node,
            ref.meeting_time,
            ref.time_from_later,
            ref.rounds_executed,
        ), (u, v, delta)
    return len(stics), batch_s, scalar_s


def test_batch_sweep_speedup():
    """>= 5x on the ring sweep (448 STICs), identical results."""
    record = ExperimentRecord(
        exp_id="BENCH-BATCH",
        title="Batched STIC sweep vs scalar per-STIC loop (UniversalRV)",
        paper_claim=(
            "a deterministic agent's choices are a pure function of its "
            "perception stream, so one compiled trace per start node "
            "serves every STIC of the sweep"
        ),
        columns=["graph", "STICs", "scalar s", "batch s", "speedup"],
    )
    results = {}
    for name, graph, max_delta in [
        ("ring n=8", oriented_ring(8), 15),
        ("torus 3x3", oriented_torus(3, 3), 9),
    ]:
        count, batch_s, scalar_s = _run_both(graph, max_delta)
        assert count >= 200
        results[name] = (count, batch_s, scalar_s)
        record.add_row(
            graph=name,
            STICs=count,
            **{
                "scalar s": round(scalar_s, 3),
                "batch s": round(batch_s, 3),
                "speedup": round(scalar_s / batch_s, 1),
            },
        )
    ring_count, ring_batch, ring_scalar = results["ring n=8"]
    record.passed = ring_scalar / ring_batch >= 5.0
    record.measured_summary = (
        f"ring sweep of {ring_count} STICs ran "
        f"{ring_scalar / ring_batch:.1f}x faster batched, bit-identical "
        "meeting times on every STIC of both sweeps"
    )
    emit(record)
    assert ring_scalar / ring_batch >= 5.0, (ring_scalar, ring_batch)
    torus_count, torus_batch, torus_scalar = results["torus 3x3"]
    assert torus_scalar / torus_batch >= 2.0, (torus_scalar, torus_batch)


def test_batch_sweep_throughput(benchmark):
    """Raw engine throughput on the ring sweep, for the timing table."""
    graph = oriented_ring(8)
    stics, budgets = _sweep_inputs(graph, 15)
    algorithm = make_universal_algorithm(TUNED)

    def run():
        return run_rendezvous_batch(
            graph,
            stics,
            algorithm,
            max_rounds=lambda u, v, delta: budgets[(u, v, delta)],
            oracle_factory=lambda s: UniversalOracle(graph, s, TUNED),
        )

    results = benchmark(run)
    assert sum(r.met for r in results) == sum(
        1 for u, v, delta in stics if classify_stic(graph, u, v, delta).feasible
    )
