"""Orchestration-layer benchmarks: parallel sharding and warm-cache.

The PR-4 acceptance benchmarks:

* a warm-cache re-run of the **fast tier** must recompute zero shards
  and complete >= 5x faster than the cold run that populated the
  store (the cold run doubles as the serial reference);
* a ``--jobs N`` run must merge byte-identically to the serial run;
  its wall-clock speedup is recorded, and asserted (>= 1.2x) only
  when the machine actually has multiple CPUs.

Consolidated ratios are appended to ``BENCH_runner.json`` (cwd) —
``{workload: {cold_s/serial_s, warm_s/parallel_s, speedup, ...}}`` —
uploaded by the CI benchmarks job next to the pytest-benchmark
timings.
"""

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.experiments.orchestrator import run_suite
from repro.experiments.records import ExperimentRecord
from repro.experiments.runner import to_markdown
from repro.experiments.store import ResultStore

_EXPORT = Path("BENCH_runner.json")


def record_ratio(workload: str, payload: dict) -> None:
    """Merge one workload's numbers into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    data[workload] = payload
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _md(runs) -> str:
    return to_markdown([(r.record, r.seconds) for r in runs], tier="fast")


def test_warm_cache_and_parallel_fast_tier(tmp_path):
    """Cold vs warm vs parallel full fast-tier suite."""
    store = ResultStore(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = run_suite(None, tier="fast", jobs=1, store=store)
    cold_s = time.perf_counter() - t0
    shards = sum(len(r.shards) for r in cold)
    assert sum(r.shards_cached for r in cold) == 0

    t0 = time.perf_counter()
    warm = run_suite(None, tier="fast", jobs=1, store=store)
    warm_s = time.perf_counter() - t0
    recomputed = sum(r.shards_computed for r in warm)
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert _md(warm) == _md(cold)

    jobs = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    parallel = run_suite(None, tier="fast", jobs=jobs, store=None)
    parallel_s = time.perf_counter() - t0
    parallel_speedup = cold_s / parallel_s
    assert _md(parallel) == _md(cold)  # bit-identical merge, any --jobs

    record_ratio(
        "fast_tier_warm_cache",
        {
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "speedup": round(warm_speedup, 2),
            "shards": shards,
            "recomputed": recomputed,
        },
    )
    record_ratio(
        "fast_tier_parallel",
        {
            "serial_s": round(cold_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(parallel_speedup, 2),
            "jobs": jobs,
            "cpus": os.cpu_count(),
        },
    )

    record = ExperimentRecord(
        exp_id="BENCH-RUNNER",
        title="Sharded runner: warm-cache and parallel fast-tier suite",
        paper_claim=(
            "experiment orchestration is embarrassingly parallel across "
            "shards, and content-addressed shard results make unchanged "
            "re-runs pure cache reads"
        ),
        columns=["mode", "seconds", "shards", "recomputed", "speedup"],
    )
    record.add_row(
        mode="cold serial", seconds=round(cold_s, 2), shards=shards,
        recomputed=shards, speedup=1.0,
    )
    record.add_row(
        mode="warm cache", seconds=round(warm_s, 2), shards=shards,
        recomputed=recomputed, speedup=round(warm_speedup, 1),
    )
    record.add_row(
        mode=f"parallel x{jobs}", seconds=round(parallel_s, 2), shards=shards,
        recomputed=shards, speedup=round(parallel_speedup, 1),
    )
    record.passed = recomputed == 0 and warm_speedup >= 5.0
    record.measured_summary = (
        f"{shards} fast-tier shards: warm re-run recomputed {recomputed} "
        f"shards at {warm_speedup:.0f}x; --jobs {jobs} merge byte-identical "
        f"at {parallel_speedup:.1f}x on {os.cpu_count()} CPU(s)"
    )
    emit(record)

    # Acceptance: warm re-run recomputes nothing and is >= 5x faster.
    assert recomputed == 0, "warm run recomputed shards"
    assert warm_speedup >= 5.0, (cold_s, warm_s)
    # Parallel wall-clock gains need real cores; merge identity is
    # asserted above unconditionally.
    if (os.cpu_count() or 1) >= 2:
        assert parallel_speedup >= 1.2, (cold_s, parallel_s, jobs)
