"""Work-queue benchmarks: lease overhead and resume cost.

The PR-10 acceptance benchmarks for the checkpointed work queue:

* the lease/complete state machine must be cheap enough to disappear
  behind real shards (>= 1000 lease+complete cycles/s un-journaled);
* journaling costs one fsynced line per event — measured here so a
  regression (e.g. an accidental flush-per-field) shows up as a
  per-event cost jump;
* a ``--resume`` of a fully-completed smoke run must recompute zero
  shards and stay byte-identical to the original merge.

Consolidated numbers are appended to ``BENCH_queue.json`` (cwd),
uploaded by the CI benchmarks job next to the other BENCH_* exports.
"""

import json
import time
from pathlib import Path

from conftest import emit

from repro.experiments.journal import JOURNAL_NAME, RunJournal, run_dir
from repro.experiments.orchestrator import run_suite
from repro.experiments.queue import QueuePolicy, ShardTask, WorkQueue
from repro.experiments.records import ExperimentRecord
from repro.experiments.runner import to_markdown
from repro.experiments.store import ResultStore

_EXPORT = Path("BENCH_queue.json")


def record_ratio(workload: str, payload: dict) -> None:
    """Merge one workload's numbers into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    data[workload] = payload
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _tasks(count: int) -> list[ShardTask]:
    return [
        ShardTask(
            plan=0,
            index=i,
            module="repro.experiments.e_fig1",
            config={"exp_id": "X", "tier": "smoke", "seed": 0, "params": {}},
            shard={"cell": i},
            key=f"{i:064x}",
        )
        for i in range(count)
    ]


def _drain(queue: WorkQueue) -> None:
    while True:
        lease = queue.lease()
        if lease is None:
            break
        queue.complete(lease.task)


def test_lease_state_machine_throughput(tmp_path):
    """Lease+complete cycles per second, with and without the journal."""
    n_plain, n_journaled = 2000, 200

    queue = WorkQueue(_tasks(n_plain), policy=QueuePolicy())
    t0 = time.perf_counter()
    _drain(queue)
    plain_s = time.perf_counter() - t0
    plain_ops = n_plain / plain_s if plain_s > 0 else float("inf")

    journal = RunJournal(tmp_path / JOURNAL_NAME, fresh=True)
    queue = WorkQueue(
        _tasks(n_journaled),
        policy=QueuePolicy(),
        journal=journal,
        run_dir=tmp_path,
    )
    t0 = time.perf_counter()
    _drain(queue)
    journaled_s = time.perf_counter() - t0
    journal.close()
    # Two events (lease + complete) per cycle, each an fsynced append.
    per_event_us = journaled_s / (2 * n_journaled) * 1e6

    record_ratio(
        "queue_lease_throughput",
        {
            "plain_cycles_per_s": round(plain_ops),
            "journaled_cycles_per_s": round(
                n_journaled / journaled_s if journaled_s > 0 else 0
            ),
            "journal_event_us": round(per_event_us, 1),
            "cycles_plain": n_plain,
            "cycles_journaled": n_journaled,
        },
    )
    # The state machine itself must vanish next to real shards.
    assert plain_ops >= 1000, plain_ops


def test_resume_overhead_smoke_suite(tmp_path):
    """A --resume of a finished run: zero recompute, near-zero cost."""
    store = ResultStore(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = run_suite(None, tier="smoke", jobs=1, store=store)
    cold_s = time.perf_counter() - t0
    shards = sum(len(r.shards) for r in cold)
    run_id = cold[0].run_id
    assert run_id and (run_dir(store.root, run_id) / JOURNAL_NAME).is_file()

    t0 = time.perf_counter()
    resumed = run_suite(None, tier="smoke", jobs=1, store=store, resume=True)
    resume_s = time.perf_counter() - t0
    recomputed = sum(r.shards_computed for r in resumed)
    speedup = cold_s / resume_s if resume_s > 0 else float("inf")

    def _md(runs) -> str:
        return to_markdown([(r.record, r.seconds) for r in runs], tier="smoke")

    assert _md(resumed) == _md(cold)  # byte-identical after resume

    record_ratio(
        "smoke_suite_resume",
        {
            "cold_s": round(cold_s, 3),
            "resume_s": round(resume_s, 3),
            "speedup": round(speedup, 2),
            "shards": shards,
            "recomputed_on_resume": recomputed,
        },
    )

    record = ExperimentRecord(
        exp_id="BENCH-QUEUE",
        title="Checkpointed work queue: resume cost on the smoke suite",
        paper_claim=(
            "journaled runs resume with zero recomputation of completed "
            "shards and byte-identical merges"
        ),
        columns=["mode", "seconds", "shards", "recomputed"],
    )
    record.add_row(
        mode="cold journaled", seconds=round(cold_s, 2), shards=shards,
        recomputed=shards,
    )
    record.add_row(
        mode="--resume", seconds=round(resume_s, 2), shards=shards,
        recomputed=recomputed,
    )
    record.passed = recomputed == 0
    record.measured_summary = (
        f"{shards} smoke shards: resume recomputed {recomputed} at "
        f"{speedup:.0f}x the cold run"
    )
    emit(record)

    assert recomputed == 0, "resume recomputed completed shards"
