"""Sparse/blocked symmetry kernel at scale: 1e4-1e5-node pipelines.

The PR-9 acceptance benchmarks.  A random regular graph is driven
through the full blocked pipeline — views (array partition
refinement), blocked multi-source BFS distance rows, batched per-pair
Shrink, Corollary 3.1 verdicts — inside a *fresh subprocess* whose
peak RSS is asserted against a fixed budget far below what any dense
``n x n`` int64 allocation would need (0.8 GB at n=1e4, 80 GB at
n=1e5).  The smoke leg (n=1e4) always runs; set ``REPRO_FULL=1`` for
the 1e5-node leg.

A mid-scale leg proves the blocked all-pairs engine end to end: the
worklist value iteration writes a ``np.lib.format.open_memmap`` atlas
for the fully symmetric 32x32 oriented torus and must match the dense
kernel bit for bit.

Every leg appends its timings, throughput, and peak RSS to
``BENCH_symmetry.json`` (cwd, canonical JSON) so the scale trajectory
stays machine-readable across PRs; CI uploads the file next to the
pytest-benchmark timings.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.graphs.families import oriented_torus
from repro.symmetry.context import SymmetryContext

_EXPORT = Path("BENCH_symmetry.json")

#: Peak-RSS budgets per pipeline leg.  Chosen with ~4x headroom over
#: measured peaks (79 MiB at n=1e4, 576 MiB at n=1e5) while staying far
#: below the dense n x n matrix each graph would otherwise need.
_SMOKE_BUDGET_BYTES = 400 * 1024 * 1024
_FULL_BUDGET_BYTES = 2 * 1024 * 1024 * 1024


def record_entry(workload: str, payload: dict) -> None:
    """Merge one benchmark payload into the consolidated JSON export."""
    data = {}
    if _EXPORT.exists():
        try:
            data = json.loads(_EXPORT.read_text())
        except json.JSONDecodeError:
            data = {}
    data[workload] = payload
    _EXPORT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# The pipeline runs in its own interpreter so ru_maxrss measures *this
# workload's* peak, not whatever earlier tests of the pytest process
# happened to allocate.
_PIPELINE = r"""
import json
import resource
import sys
import time

import numpy as np

from repro.graphs.random_graphs import random_regular_graph
from repro.symmetry.context import SymmetryContext
from repro.util.lcg import SplitMix64, derive_seed

n, degree, samples = (int(a) for a in sys.argv[1:4])

t0 = time.perf_counter()
graph = random_regular_graph(n, degree, seed=7)
build_s = time.perf_counter() - t0

t0 = time.perf_counter()
context = SymmetryContext(graph)
views_s = time.perf_counter() - t0

rows = np.linspace(0, n - 1, num=samples).astype(np.int64)
t0 = time.perf_counter()
dist = context.distances_block(rows)
distances_s = time.perf_counter() - t0

rng = SplitMix64(derive_seed("bench-scale", n, degree))
us = np.array([rng.randrange(n) for _ in range(samples)], dtype=np.int64)
vs = np.array([(u + 1 + rng.randrange(n - 1)) % n for u in us], dtype=np.int64)
t0 = time.perf_counter()
shrinks = context.shrink_pairs(us, vs, pair_chunk=8)
shrink_s = time.perf_counter() - t0

t0 = time.perf_counter()
verdicts = context.verdicts_for_pairs(us, vs, delta=2)
verdicts_s = time.perf_counter() - t0

print(json.dumps({
    "n": n,
    "degree": degree,
    "samples": samples,
    "build_s": round(build_s, 3),
    "views_s": round(views_s, 3),
    "distances_s": round(distances_s, 3),
    "shrink_s": round(shrink_s, 3),
    "verdicts_s": round(verdicts_s, 3),
    "color_classes": int(context.colors.max()) + 1,
    "sampled_eccentricity": int(dist.max()),
    "unreached": int((dist < 0).sum()),
    "max_shrink_sampled": int(shrinks.max()),
    "feasible_verdicts": sum(v.feasible for v in verdicts),
    "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
}, sort_keys=True))
"""


def _run_pipeline(n: int, degree: int, samples: int) -> dict:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PIPELINE, str(n), str(degree), str(samples)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _assert_pipeline_sane(stats: dict, budget_bytes: int) -> None:
    assert stats["peak_rss_bytes"] < budget_bytes, stats
    # The graph is connected: every sampled BFS row reaches every node.
    assert stats["unreached"] == 0, stats
    assert stats["sampled_eccentricity"] > 0, stats
    # Random port labels break all symmetry at these sizes, so every
    # sampled pair is non-symmetric hence feasible at any delay.
    assert stats["feasible_verdicts"] == stats["samples"], stats


def _record_pipeline(workload: str, stats: dict, budget_bytes: int) -> None:
    record_entry(
        workload,
        {
            **stats,
            "budget_bytes": budget_bytes,
            "dense_matrix_bytes": stats["n"] * stats["n"] * 8,
            "distance_rows_per_s": round(
                stats["samples"] / stats["distances_s"], 1
            )
            if stats["distances_s"] > 0
            else float("inf"),
            "shrink_pairs_per_s": round(stats["samples"] / stats["shrink_s"], 1)
            if stats["shrink_s"] > 0
            else float("inf"),
        },
    )


def test_scale_pipeline_smoke_n10k():
    """1e4-node random 3-regular graph through the full blocked
    pipeline in under 400 MiB — half the 0.8 GB a single dense int64
    matrix would cost, let alone the kernel's two."""
    stats = _run_pipeline(10_000, 3, 32)
    _assert_pipeline_sane(stats, _SMOKE_BUDGET_BYTES)
    _record_pipeline("scale_pipeline_n10000", stats, _SMOKE_BUDGET_BYTES)


def test_scale_pipeline_full_n100k():
    """1e5-node random 3-regular graph, full pipeline under 2 GiB —
    the dense kernel would need 80 GB per matrix.  REPRO_FULL=1 only
    (~1 min); the committed BENCH_symmetry.json carries its trajectory."""
    if os.environ.get("REPRO_FULL", "") != "1":
        import pytest

        pytest.skip("set REPRO_FULL=1 for the 1e5-node pipeline")
    stats = _run_pipeline(100_000, 3, 64)
    _assert_pipeline_sane(stats, _FULL_BUDGET_BYTES)
    _record_pipeline("scale_pipeline_n100000", stats, _FULL_BUDGET_BYTES)


def test_blocked_memmap_all_pairs_matches_dense(tmp_path):
    """32x32 oriented torus (n=1024, fully symmetric): the blocked
    worklist value iteration, writing straight into a memory-mapped
    atlas, must reproduce the dense kernel bit for bit."""
    graph = oriented_torus(32, 32)
    n = graph.n

    t0 = time.perf_counter()
    dense = SymmetryContext(graph).shrink_all
    dense_s = time.perf_counter() - t0

    out = np.lib.format.open_memmap(
        tmp_path / "shrink.npy", mode="w+", dtype=np.int64, shape=(n, n)
    )
    fresh = SymmetryContext(graph)
    t0 = time.perf_counter()
    fresh.shrink_all_into(out, block_size=256)
    blocked_s = time.perf_counter() - t0
    out.flush()

    assert np.array_equal(np.load(tmp_path / "shrink.npy"), dense)
    assert int(dense.max()) > 0  # the torus has real symmetric pairs
    record_entry(
        "blocked_memmap_all_pairs_torus32x32",
        {
            "n": n,
            "dense_s": round(dense_s, 3),
            "blocked_memmap_s": round(blocked_s, 3),
            "identical": True,
        },
    )
